"""Drive a protocol through a scenario's event stream.

:class:`ScenarioRunner` is the execution half of the scenario engine: it
resolves a protocol by registry name (or accepts a
:class:`~repro.core.base.Protocol` instance), establishes the initial group
on a shared medium, then applies every scheduled event through the protocol's
:meth:`~repro.core.base.Protocol.apply_event`.  The proposed protocol serves
events with its native Join/Leave/Merge/Partition sub-protocols; every
baseline re-executes its full GKA — the exact comparison the paper's Tables 4
and 5 make, but over arbitrary multi-event workloads.

Schedule-driven scenarios run on a single-hop — optionally lossy —
:class:`~repro.network.medium.BroadcastMedium`.  Mobility-driven scenarios
run on a :class:`~repro.mobility.relay.MultiHopMedium` over the scenario's
:class:`~repro.mobility.field.MobilityField`: the runner advances the field
to each event's timestamp, so per-link losses, relay paths and the emergent
partition/merge stream all see the same positions.

Every stochastic input is a *named* child of the scenario's master seed
(medium losses, mobility trajectories, the establishment seed, one seed per
event, the adversary's streams), so streams never cross-contaminate and two
runs with the same seed are identical down to the per-node energy ledgers.

After every step the runner records an :class:`~repro.sim.report.EventRecord`
with the step's energy (per member, priced on the configured
:class:`~repro.energy.accounting.DeviceProfile`), medium traffic, host
wall-time, and — new with the adversary subsystem — the step's security
story: how many attack actions fired, whether the protocol detected them (by
aborting the step), and a verdict from every security oracle
(:mod:`repro.adversary.oracles`) over the chain of keys agreed so far.  A
scenario with an adversary never raises out of an attacked step: a protocol
abort is itself a measurement (*detection*), recorded and reported, and the
scenario ends there.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from .. import telemetry
from ..adversary.actors import AdversarySuite
from ..adversary.oracles import OracleContext, evaluate_oracles
from ..core.base import GroupState, Protocol, ProtocolResult, SystemSetup
from ..core.registry import create_protocol
from ..energy.accounting import DeviceProfile
from ..engine.executor import EngineConfig
from ..exceptions import ProtocolError, ReproError
from ..mobility.field import MobilityField
from ..mobility.relay import MultiHopMedium
from ..mobility.tiered import TieredMedium
from ..network.medium import BroadcastMedium
from .report import EventRecord, ScenarioReport
from .scenarios import Scenario

__all__ = ["ScenarioRunner"]

#: (messages, bits, bits w/ retries, transmissions, relay bits, receipt count)
_Traffic = Tuple[int, int, int, int, int, int]

#: Event kinds that admit / remove members (drives the secrecy oracles).
_ADDING_KINDS = frozenset({"join", "merge"})
_REMOVING_KINDS = frozenset({"leave", "partition"})


class ScenarioRunner:
    """Runs registry-selected protocols through declarative scenarios.

    Parameters
    ----------
    setup:
        The shared :class:`~repro.core.base.SystemSetup` (PKG, group, hash).
    device:
        Hardware profile used to price recorded costs into Joules.
    check_agreement:
        When true (the default), raise :class:`~repro.exceptions.ProtocolError`
        the moment any step leaves the members disagreeing on the key;
        when false, the disagreement is only recorded in the report.  With an
        adversary configured the runner never raises — disagreement under
        attack *is* the result being measured.
    engine:
        Optional :class:`~repro.engine.executor.EngineConfig` driving every
        protocol step through the virtual-time kernel with a latency model —
        the per-event records then carry real ``sim_latency_s``/``timeouts``
        columns.  ``None`` (the default) runs in instant mode, which is
        bit-identical to the pre-kernel synchronous execution.  When the
        scenario carries an adversary, the runner threads the built attacker
        suite through this profile so the executor consults it on every
        transmission.
    """

    def __init__(
        self,
        setup: SystemSetup,
        *,
        device: Optional[DeviceProfile] = None,
        check_agreement: bool = True,
        engine: Optional[EngineConfig] = None,
    ) -> None:
        self.setup = setup
        # `is None`, not truthiness: a caller-supplied profile must never be
        # silently swapped for the default just because it tests falsy (the
        # PR-1 `medium or BroadcastMedium()` bug class).
        self.device = device if device is not None else DeviceProfile()
        self.check_agreement = check_agreement
        self.engine = engine

    # --------------------------------------------------------------- medium
    def _build_medium(self, scenario: Scenario) -> Tuple[BroadcastMedium, Optional[MobilityField]]:
        """The scenario's shared medium (and its field, when mobile)."""
        medium_rng = scenario.master_rng().fork("medium")
        if scenario.tiers is not None:
            tier_map = scenario.tiers.build_map(
                [identity.name for identity in scenario.universe()]
            )
            degenerate = scenario.tiers.degenerate_loss
            if degenerate is not None:
                # A single gateway-free tier with i.i.d. loss *is* the
                # classic flat domain: build the historic medium (identical
                # draw streams, bit-identical runs) and keep the tier map
                # around for topology-aware latency models.
                medium = BroadcastMedium(
                    loss_probability=degenerate,
                    max_retries=scenario.max_retries,
                    rng=medium_rng,
                )
                medium.tier_map = tier_map
                return medium, None
            return (
                TieredMedium(
                    tier_map,
                    max_hops=scenario.tiers.max_hops,
                    max_retries=scenario.max_retries,
                    rng=medium_rng,
                ),
                None,
            )
        if scenario.mobility is None:
            return (
                BroadcastMedium(
                    loss_probability=scenario.loss_probability,
                    max_retries=scenario.max_retries,
                    rng=medium_rng,
                ),
                None,
            )
        field = scenario.build_mobility_field()
        return (
            MultiHopMedium(
                field,
                scenario.mobility.build_link(field),
                max_hops=scenario.mobility.max_hops,
                max_retries=scenario.max_retries,
                rng=medium_rng,
            ),
            field,
        )

    # ------------------------------------------------------------------- run
    def run(self, protocol: Union[str, Protocol], scenario: Scenario) -> ScenarioReport:
        """Execute ``scenario`` under ``protocol`` and return the report."""
        if isinstance(protocol, str):
            protocol = create_protocol(protocol, self.setup)
        with telemetry.span(
            f"scenario:{scenario.name}",
            category="scenario",
            track="scenario",
            args={"protocol": protocol.name},
        ) as scenario_span:
            report = self._run(protocol, scenario)
            if scenario_span is not None:
                scenario_span.arg("steps", len(report.records))
        return report

    def _run(self, protocol: Protocol, scenario: Scenario) -> ScenarioReport:
        medium, field = self._build_medium(scenario)
        suite = scenario.build_adversary()
        engine = self.engine
        if suite is not None:
            suite.attach(medium)
            engine = replace(
                self.engine if self.engine is not None else EngineConfig(),
                adversary=suite,
            )
        records: List[EventRecord] = []
        #: distinct keys the group has agreed on so far, oldest first
        key_history: List[int] = []
        #: keys known to members who have departed at any point so far
        departed_keys: Set[int] = set()

        # ------------------------------------------------------ establishment
        members = scenario.initial_members()
        record, state = self._step(
            protocol=protocol,
            suite=suite,
            medium=medium,
            index=0,
            kind="establish",
            event_time=0.0,
            state=None,
            group_size_on_abort=len(members),
            key_history=key_history,
            departed_keys=departed_keys,
            action=lambda: protocol.run(
                members,
                medium=medium,
                seed=scenario.child_seed("protocol/establish"),
                engine=engine,
            ),
        )
        records.append(record)
        self._check(record, protocol.name, scenario, suite)

        # ------------------------------------------------------- churn events
        if state is not None:
            for position, scheduled in enumerate(scenario.build_events(), start=1):
                if field is not None:
                    field.advance_to(scheduled.time)
                if scheduled.kind in _REMOVING_KINDS:
                    # The members about to depart know every key agreed while
                    # they were inside; from here on, no later key may ever
                    # match one of these (forward secrecy).
                    departed_keys.update(key_history)
                current = state
                record, state = self._step(
                    protocol=protocol,
                    suite=suite,
                    medium=medium,
                    index=position,
                    kind=scheduled.kind,
                    event_time=scheduled.time,
                    state=current,
                    group_size_on_abort=current.size,
                    key_history=key_history,
                    departed_keys=departed_keys,
                    action=lambda: protocol.apply_event(
                        current,
                        scheduled.event,
                        medium=medium,
                        seed=scenario.child_seed(f"protocol/event/{position:04d}"),
                        engine=engine,
                    ),
                )
                records.append(record)
                self._check(record, protocol.name, scenario, suite)
                if state is None:
                    # The protocol aborted under attack: detection recorded,
                    # nothing left to run the remaining events against.
                    break

        return ScenarioReport(
            scenario_name=scenario.name,
            scenario_description=scenario.describe(),
            protocol=protocol.name,
            records=records,
            final_size=state.size if state is not None else 0,
            device=f"{self.device.cpu.name} + {self.device.transceiver.name}",
            adversary=suite.describe() if suite is not None else "",
            key_fingerprint=self._key_fingerprint(key_history),
        )

    def run_all(
        self, protocols: List[Union[str, Protocol]], scenario: Scenario
    ) -> List[ScenarioReport]:
        """Run the same scenario under each protocol (comparison sweeps)."""
        return [self.run(protocol, scenario) for protocol in protocols]

    # ----------------------------------------------------------------- steps
    def _step(
        self,
        *,
        protocol: Protocol,
        suite: Optional[AdversarySuite],
        medium: BroadcastMedium,
        index: int,
        kind: str,
        event_time: float,
        state: Optional[GroupState],
        group_size_on_abort: int,
        key_history: List[int],
        departed_keys: Set[int],
        action: Callable[[], ProtocolResult],
    ) -> Tuple[EventRecord, Optional[GroupState]]:
        """Run one protocol step under the adversary and judge the outcome.

        Returns the step's record and the post-step state (``None`` when the
        step aborted — with an adversary an abort is *detection*, without one
        the error propagates exactly as before).  ``key_history`` is updated
        in place with any newly agreed key.
        """
        before_energy = self._energy_snapshot(state) if state is not None else {}
        before_traffic = self._traffic_snapshot(medium)
        attacks_before = suite.stats.active_actions if suite is not None else 0
        tampering_before = suite.stats.tampering_actions if suite is not None else 0
        if suite is not None:
            suite.begin_step(index, kind)
        error: Optional[ReproError] = None
        result: Optional[ProtocolResult] = None
        started = time.perf_counter()
        try:
            result = action()
        except ReproError as exc:
            if suite is None:
                raise
            error = exc
        wall = time.perf_counter() - started
        tracer = telemetry.active_tracer()
        if tracer is not None:
            tracer.complete(
                f"step:{kind}",
                category="step",
                track="scenario",
                wall_start=tracer.now() - wall,
                wall_dur=wall,
                sim_start=event_time,
                sim_dur=result.sim_latency_s if result is not None else 0.0,
                args={
                    "index": index,
                    "aborted": result is None,
                },
            )
        telemetry.count("scenario.steps")
        telemetry.observe("scenario.step_wall_s", wall)
        if result is not None:
            telemetry.observe("scenario.sim_latency_s", result.sim_latency_s)
        else:
            telemetry.count("scenario.aborted_steps")
        new_state = result.state if result is not None else None
        if suite is not None:
            suite.end_step(new_state)
        attacks = (suite.stats.active_actions - attacks_before) if suite is not None else 0
        tampering = (
            (suite.stats.tampering_actions - tampering_before) if suite is not None else 0
        )

        previous_keys = tuple(key_history)
        key = new_state.agreed_key() if new_state is not None and new_state.all_agree() else None
        if key is not None and key not in key_history:
            key_history.append(key)
        oracles = evaluate_oracles(
            OracleContext(
                kind=kind,
                index=index,
                state=new_state if new_state is not None else state,
                agreed=new_state.all_agree() if new_state is not None else False,
                key=key,
                previous_keys=previous_keys,
                departed_keys=frozenset(departed_keys),
                added_members=kind in _ADDING_KINDS,
                removed_members=kind in _REMOVING_KINDS,
                adversary=suite,
                attacks=tampering,
                aborted=result is None,
                error=str(error) if error is not None else "",
            )
        )

        if result is not None:
            record = self._record(
                index=index,
                kind=kind,
                event_time=event_time,
                result=result,
                medium=medium,
                before_energy=before_energy,
                before_traffic=before_traffic,
                wall=wall,
                attacks=attacks,
                oracles=oracles,
            )
            return record, result.state
        # Abort: the traffic spent before the protocol refused still counts;
        # energy deltas are computed for the surviving pre-step members.
        energy = self._energy_delta(state, before_energy) if state is not None else {}
        traffic = self._traffic_delta(medium, before_traffic)
        record = EventRecord(
            index=index,
            kind=kind,
            time=event_time,
            group_size=group_size_on_abort,
            rounds=0,
            messages=traffic[0],
            bits=traffic[1],
            bits_with_retries=traffic[2],
            wall_seconds=wall,
            agreed=False,
            energy_j=energy,
            transmissions=traffic[3],
            relay_bits=traffic[4],
            relay_energy_j=self.device.transceiver.tx_energy_mj(traffic[4]) / 1000.0,
            mean_hops=1.0,
            attacks=attacks,
            # An abort only counts as *detection* when the adversary actually
            # tampered with the step — an environmental failure (exhausted
            # timeout waves on a terrible link, say) under a passive
            # eavesdropper is just a failure, not a caught attack.
            detected=tampering > 0,
            aborted=True,
            abort_reason=f"{type(error).__name__}: {error}",
            oracles=oracles,
        )
        return record, None

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _key_fingerprint(key_history: List[int]) -> str:
        """A short digest of the ordered chain of keys the group agreed on.

        Two runs agreed on the *same keys in the same order* iff their
        fingerprints match — which is how the campaign determinism harness
        pins serial and parallel executions bit-identical without ever
        exporting an actual group key.
        """
        digest = hashlib.sha256(
            b"|".join(str(key).encode("ascii") for key in key_history)
        )
        return digest.hexdigest()[:16]

    def _energy_snapshot(self, state: GroupState) -> Dict[str, Tuple[int, float]]:
        """Per-member (recorder identity, Joules so far) before an event."""
        return {
            name: (id(recorder), self.device.total_j(recorder))
            for name, recorder in state.recorders().items()
        }

    def _energy_delta(
        self, state: GroupState, before_energy: Dict[str, Tuple[int, float]]
    ) -> Dict[str, float]:
        """Per-member Joules spent on one step.

        The proposed protocol's recorders persist across events, so the step
        cost is a delta; a re-executing baseline creates fresh recorders
        (different identity) whose totals *are* the step cost.
        """
        energy: Dict[str, float] = {}
        for name, recorder in state.recorders().items():
            total = self.device.total_j(recorder)
            previous_id, previous_total = before_energy.get(name, (None, 0.0))
            if previous_id is not None and previous_id == id(recorder):
                energy[name] = total - previous_total
            else:
                energy[name] = total
        return energy

    @staticmethod
    def _traffic_snapshot(medium: BroadcastMedium) -> _Traffic:
        return (
            medium.total_messages(),
            medium.total_bits(),
            medium.total_bits(include_retries=True),
            medium.total_transmissions(),
            medium.total_relay_bits(),
            len(medium.receipts),
        )

    @staticmethod
    def _traffic_delta(medium: BroadcastMedium, before: _Traffic) -> _Traffic:
        current = ScenarioRunner._traffic_snapshot(medium)
        return tuple(now - then for now, then in zip(current, before))  # type: ignore[return-value]

    def _record(
        self,
        *,
        index: int,
        kind: str,
        event_time: float,
        result: ProtocolResult,
        medium: BroadcastMedium,
        before_energy: Dict[str, Tuple[int, float]],
        before_traffic: _Traffic,
        wall: float,
        attacks: int = 0,
        oracles: Optional[Dict[str, Optional[bool]]] = None,
    ) -> EventRecord:
        state = result.state
        energy = self._energy_delta(state, before_energy)
        messages0, bits0, retry_bits0, transmissions0, relay_bits0, receipts0 = before_traffic
        relay_bits = medium.total_relay_bits() - relay_bits0
        step_receipts = medium.receipts[receipts0:]
        mean_hops = (
            sum(receipt.hops for receipt in step_receipts) / len(step_receipts)
            if step_receipts
            else 1.0
        )
        return EventRecord(
            index=index,
            kind=kind,
            time=event_time,
            group_size=state.size,
            rounds=result.rounds,
            messages=medium.total_messages() - messages0,
            bits=medium.total_bits() - bits0,
            bits_with_retries=medium.total_bits(include_retries=True) - retry_bits0,
            wall_seconds=wall,
            agreed=state.all_agree(),
            energy_j=energy,
            transmissions=medium.total_transmissions() - transmissions0,
            relay_bits=relay_bits,
            relay_energy_j=self.device.transceiver.tx_energy_mj(relay_bits) / 1000.0,
            mean_hops=mean_hops,
            sim_latency_s=result.sim_latency_s,
            timeouts=result.timeouts,
            attacks=attacks,
            oracles=oracles or {},
        )

    def _check(
        self,
        record: EventRecord,
        protocol_name: str,
        scenario: Scenario,
        suite: Optional[AdversarySuite],
    ) -> None:
        # Under an adversary a broken agreement is the measurement itself —
        # the oracles have already recorded it — so the runner never raises.
        if suite is None and self.check_agreement and not record.agreed:
            raise ProtocolError(
                f"{protocol_name} left the group disagreeing on the key after "
                f"step {record.index} ({record.kind}) of scenario {scenario.name!r}"
            )
