"""JSON scenario specs: build :class:`Scenario` objects from plain dicts.

This module is the serialization boundary of the scenario engine.  A *spec*
is a plain JSON-able dict describing one :class:`~repro.sim.scenarios.Scenario`
(see :mod:`repro.sim.__main__` for the CLI's documented shape); the builders
here turn specs into live objects, and the ``*_to_spec`` inverses turn live
objects back into specs.  Because a spec contains only JSON scalars, it can
cross process boundaries (the :mod:`repro.campaign` workers), be content-hashed
(the campaign result cache) or be written to disk — none of which a live
scenario with its RNG-bearing media can do safely.

Round-trip guarantee: ``build_scenario(scenario_to_spec(s))`` constructs a
scenario whose expansion, seeds and description equal ``s``'s, for every
scenario expressible as a spec (declarative schedules, trace replays,
mobility configs and adversary configs all are; hand-built ``ChurnSchedule``
subclasses are not).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Mapping, Optional, Union

from ..adversary.config import AdversaryConfig
from ..energy.transceiver import RADIO_100KBPS, WLAN_SPECTRUM24
from ..engine.executor import EngineConfig
from ..engine.latency import FixedLatency, TieredLatency, TransceiverLatency
from ..exceptions import ParameterError
from ..mobility.config import MobilityConfig
from ..network.tiers import TierConfig
from ..mobility.field import Area
from ..mobility.models import RandomWaypoint, ReferencePointGroup, StaticGrid
from ..network.events import (
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
)
from ..pki.identity import Identity
from .scenarios import (
    BurstPartitions,
    ChurnSchedule,
    PeriodicMerges,
    PoissonChurn,
    Scenario,
    ScheduledEvent,
    TraceReplay,
)

__all__ = [
    "SCHEDULE_KINDS",
    "MOBILITY_MODELS",
    "build_schedule",
    "build_mobility",
    "build_adversary",
    "build_engine",
    "build_event",
    "build_scenario",
    "build_tiers",
    "event_to_spec",
    "schedule_to_spec",
    "mobility_to_spec",
    "adversary_to_spec",
    "engine_to_spec",
    "scenario_to_spec",
    "tiers_to_spec",
    "seed_to_spec",
    "build_seed",
]

SCHEDULE_KINDS = {
    "poisson": PoissonChurn,
    "bursts": BurstPartitions,
    "merges": PeriodicMerges,
}

MOBILITY_MODELS = {
    "static-grid": StaticGrid,
    "random-waypoint": RandomWaypoint,
    "rpgm": ReferencePointGroup,
}


# --------------------------------------------------------------------- seeds
def seed_to_spec(seed: object) -> object:
    """A JSON-able form of a scenario seed (bytes become a tagged hex dict)."""
    if isinstance(seed, bytes):
        return {"bytes": seed.hex()}
    if seed is None or isinstance(seed, (int, str)):
        return seed
    raise ParameterError(f"seed {seed!r} is not spec-serializable")


def build_seed(spec: object) -> object:
    """Invert :func:`seed_to_spec` (tagged hex dicts become bytes again)."""
    if isinstance(spec, dict):
        try:
            return bytes.fromhex(spec["bytes"])
        except (KeyError, TypeError, ValueError):
            raise ParameterError(f"malformed seed spec {spec!r}") from None
    return spec


# -------------------------------------------------------------------- events
def event_to_spec(event: Union[MembershipEvent, ScheduledEvent]) -> Dict[str, object]:
    """One membership event (optionally time-stamped) as a JSON-able dict."""
    spec: Dict[str, object] = {}
    if isinstance(event, ScheduledEvent):
        spec["time"] = event.time
        event = event.event
    if isinstance(event, JoinEvent):
        spec.update(kind="join", member=event.joining.name)
    elif isinstance(event, LeaveEvent):
        spec.update(kind="leave", member=event.leaving.name)
    elif isinstance(event, MergeEvent):
        spec.update(kind="merge", members=[m.name for m in event.other_group])
    elif isinstance(event, PartitionEvent):
        spec.update(kind="partition", members=[m.name for m in event.leaving])
    else:
        raise ParameterError(f"unknown membership event {event!r}")
    return spec


def build_event(spec: Mapping) -> Union[MembershipEvent, ScheduledEvent]:
    """Invert :func:`event_to_spec`."""
    spec = dict(spec)
    time = spec.pop("time", None)
    kind = spec.pop("kind", None)
    event: MembershipEvent
    if kind == "join":
        event = JoinEvent(joining=Identity(spec["member"]))
    elif kind == "leave":
        event = LeaveEvent(leaving=Identity(spec["member"]))
    elif kind == "merge":
        event = MergeEvent(other_group=tuple(Identity(name) for name in spec["members"]))
    elif kind == "partition":
        event = PartitionEvent(leaving=tuple(Identity(name) for name in spec["members"]))
    else:
        raise ParameterError(
            f"event.kind must be join/leave/merge/partition, got {kind!r}"
        )
    if time is not None:
        return ScheduledEvent(time=float(time), event=event)
    return event


# ----------------------------------------------------------------- schedules
def build_schedule(spec: Optional[Mapping]) -> Optional[ChurnSchedule]:
    """A :class:`ChurnSchedule` from its spec dict (``None`` passes through)."""
    if spec is None:
        return None
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind == "trace":
        spacing = spec.pop("spacing", 1.0)
        events = tuple(build_event(entry) for entry in spec.pop("events", ()))
        if spec:
            raise ParameterError(f"unknown trace schedule keys: {sorted(spec)}")
        return TraceReplay(events=events, spacing=float(spacing))
    if kind not in SCHEDULE_KINDS:
        raise ParameterError(
            f"schedule.kind must be one of {sorted(SCHEDULE_KINDS) + ['trace']}, got {kind!r}"
        )
    return SCHEDULE_KINDS[kind](**spec)


def schedule_to_spec(schedule: Optional[ChurnSchedule]) -> Optional[Dict[str, object]]:
    """Invert :func:`build_schedule` for the declarative schedule classes."""
    if schedule is None:
        return None
    if isinstance(schedule, TraceReplay):
        return {
            "kind": "trace",
            "spacing": schedule.spacing,
            "events": [event_to_spec(event) for event in schedule.events],
        }
    for kind, cls in SCHEDULE_KINDS.items():
        if type(schedule) is cls:
            return {"kind": kind, **dataclasses.asdict(schedule)}
    raise ParameterError(
        f"schedule {type(schedule).__name__} is not spec-serializable; "
        "use one of the declarative schedule classes"
    )


# ------------------------------------------------------------------ mobility
def build_mobility(spec: Optional[Mapping]) -> Optional[MobilityConfig]:
    """A :class:`MobilityConfig` from its spec dict (``None`` passes through)."""
    if spec is None:
        return None
    spec = dict(spec)
    model_name = spec.pop("model", "random-waypoint")
    if model_name not in MOBILITY_MODELS:
        raise ParameterError(
            f"mobility.model must be one of {sorted(MOBILITY_MODELS)}, got {model_name!r}"
        )
    model_cls = MOBILITY_MODELS[model_name]
    model_fields = {
        name: spec.pop(name)
        for name in list(spec)
        if name in getattr(model_cls, "__dataclass_fields__", {})
    }
    area = spec.pop("area", [500.0, 500.0])
    return MobilityConfig(
        model=model_cls(**model_fields),
        area=Area(float(area[0]), float(area[1])),
        **spec,
    )


def mobility_to_spec(mobility: Optional[MobilityConfig]) -> Optional[Dict[str, object]]:
    """Invert :func:`build_mobility` for the named mobility models."""
    if mobility is None:
        return None
    for name, cls in MOBILITY_MODELS.items():
        if type(mobility.model) is cls:
            model_name = name
            break
    else:
        raise ParameterError(
            f"mobility model {type(mobility.model).__name__} is not spec-serializable"
        )
    spec: Dict[str, object] = {"model": model_name}
    spec.update(dataclasses.asdict(mobility.model))
    spec["area"] = [mobility.area.width, mobility.area.height]
    for field_ in dataclasses.fields(MobilityConfig):
        if field_.name in ("model", "area"):
            continue
        spec[field_.name] = getattr(mobility, field_.name)
    return spec


# ----------------------------------------------------------------- adversary
def build_adversary(spec: object) -> Optional[AdversaryConfig]:
    """An :class:`AdversaryConfig` from a preset name, spec dict or instance."""
    if spec is None:
        return None
    if isinstance(spec, AdversaryConfig):
        return spec
    if isinstance(spec, str):
        text = spec.strip()
        if text.startswith("{"):
            return AdversaryConfig(**json.loads(text))
        return AdversaryConfig.preset(text)
    if isinstance(spec, Mapping):
        return AdversaryConfig(**spec)
    raise ParameterError(f"cannot build an adversary from {spec!r}")


def adversary_to_spec(adversary: Optional[AdversaryConfig]) -> Optional[Dict[str, object]]:
    """Invert :func:`build_adversary` (always the explicit field-dict form)."""
    if adversary is None:
        return None
    spec = dataclasses.asdict(adversary)
    spec["target_parts"] = list(spec["target_parts"])
    return spec


# --------------------------------------------------------------------- tiers
def build_tiers(spec: Optional[Mapping]) -> Optional[TierConfig]:
    """A :class:`TierConfig` from its spec dict (``None`` passes through).

    The spec's ``tiers`` entries name their link classes by preset
    (``ground`` / ``aerial`` / ``satellite`` / ``satellite-bursty``) or
    carry explicit field dicts; see :class:`~repro.network.tiers.TierConfig`
    for the ``members`` / ``gateways`` / ``overrides`` shapes.
    """
    if spec is None:
        return None
    if isinstance(spec, TierConfig):
        return spec
    spec = dict(spec)
    unknown = set(spec) - set(TierConfig.__dataclass_fields__)
    if unknown:
        raise ParameterError(f"unknown tiers spec keys: {sorted(unknown)}")
    if "tiers" not in spec:
        raise ParameterError("a tiers spec needs a 'tiers' entry")
    return TierConfig(**spec)


def tiers_to_spec(tiers: Optional[TierConfig]) -> Optional[Dict[str, object]]:
    """Invert :func:`build_tiers` (presets collapse to their names)."""
    if tiers is None:
        return None
    return tiers.to_spec()


# -------------------------------------------------------------------- engine
def build_engine(spec: Union[str, Mapping, None]) -> Optional[EngineConfig]:
    """An :class:`EngineConfig` from a profile string or spec dict.

    Profile strings: ``instant`` (or ``None``) for the synchronous-equivalent
    driver, ``radio`` / ``wlan`` for :class:`TransceiverLatency` over the
    named transceivers, ``fixed:<seconds>`` for :class:`FixedLatency`.  The
    dict form carries a ``latency`` profile string plus any of the remaining
    :class:`EngineConfig` fields (``round_timeout_s`` etc.).
    """
    if spec is None:
        return None
    if isinstance(spec, Mapping):
        spec = dict(spec)
        latency_spec = spec.pop("latency", None)
        latency = None
        if latency_spec is not None:
            built = build_engine(latency_spec)
            latency = built.latency if built is not None else None
        if latency is None and not spec:
            return None
        return EngineConfig(latency=latency, **spec)
    if spec == "instant":
        return None
    if spec == "radio":
        return EngineConfig(latency=TransceiverLatency(RADIO_100KBPS))
    if spec == "wlan":
        return EngineConfig(latency=TransceiverLatency(WLAN_SPECTRUM24))
    if spec == "tiered":
        # Binds to the scenario medium's tier map at executor start; on
        # non-tiered media it prices everything at the ground fallback.
        return EngineConfig(latency=TieredLatency())
    if spec.startswith("fixed:"):
        return EngineConfig(latency=FixedLatency(float(spec.split(":", 1)[1])))
    raise ParameterError(
        f"unknown engine profile {spec!r}; use instant, radio, wlan, tiered "
        "or fixed:<seconds>"
    )


def engine_to_spec(engine: Optional[EngineConfig]) -> Union[str, Dict[str, object]]:
    """Invert :func:`build_engine` for the profile-expressible configurations.

    Raises :class:`~repro.exceptions.ParameterError` for configurations a
    spec cannot express (custom latency models, non-default transceiver
    latency knobs, an attached adversary suite — the campaign attaches
    adversaries per cell, never on the engine spec).
    """
    if engine is None:
        return "instant"
    if engine.adversary is not None:
        raise ParameterError(
            "an EngineConfig carrying a live adversary suite is not "
            "spec-serializable; configure the adversary on the scenario instead"
        )
    latency = engine.latency
    if latency is None:
        profile = "instant"
    elif isinstance(latency, FixedLatency):
        profile = f"fixed:{latency.delay_s:g}"
    elif isinstance(latency, TransceiverLatency):
        default = TransceiverLatency(latency.transceiver)
        if (
            latency.per_hop_overhead_s != default.per_hop_overhead_s
            or latency.propagation_m_per_s != default.propagation_m_per_s
        ):
            raise ParameterError(
                "TransceiverLatency with non-default overhead/propagation "
                "is not spec-serializable"
            )
        if latency.transceiver is RADIO_100KBPS:
            profile = "radio"
        elif latency.transceiver is WLAN_SPECTRUM24:
            profile = "wlan"
        else:
            raise ParameterError(
                f"transceiver {latency.transceiver.name!r} has no engine profile name"
            )
    elif isinstance(latency, TieredLatency):
        default = TieredLatency()
        if (
            latency._explicit
            or latency.per_hop_overhead_s != default.per_hop_overhead_s
            or latency.fallback != default.fallback
            or latency.propagation_m_per_s != default.propagation_m_per_s
        ):
            # A runtime-discovered tier_map is fine (it rebinds per run),
            # but an explicitly pinned map or non-default knobs are not
            # expressible as the bare profile string.
            raise ParameterError(
                "TieredLatency with an explicit tier map or non-default "
                "knobs is not spec-serializable"
            )
        profile = "tiered"
    else:
        raise ParameterError(
            f"latency model {type(latency).__name__} is not spec-serializable"
        )
    defaults = EngineConfig()
    extras = {
        name: getattr(engine, name)
        for name in (
            "round_timeout_s",
            "max_timeout_waves",
            "serialize_channel",
            "crypto_backend",
        )
        if getattr(engine, name) != getattr(defaults, name)
    }
    if not extras:
        return profile
    return {"latency": profile, **extras}


# ----------------------------------------------------------------- scenarios
def build_scenario(spec: Mapping, *, adversary_override: Optional[str] = None) -> Scenario:
    """Turn a parsed JSON spec into a :class:`Scenario`.

    Unknown keys raise :class:`~repro.exceptions.ParameterError` — scenario
    specs cross process and *network* boundaries (the campaign workers, the
    fleet wire protocol), so a typo must come back as one clean error line,
    not a ``TypeError`` traceback from the dataclass constructor.
    """
    spec = dict(spec)
    adversary_spec = spec.pop("adversary", None)
    if adversary_override is not None:
        adversary_spec = adversary_override
    if "seed" in spec:
        spec["seed"] = build_seed(spec["seed"])
    handled = {"name", "initial_size", "schedule", "mobility", "tiers"}
    unknown = set(spec) - set(Scenario.__dataclass_fields__) - handled
    if unknown:
        raise ParameterError(f"unknown scenario spec keys: {sorted(unknown)}")
    return Scenario(
        name=spec.pop("name", "cli-scenario"),
        initial_size=int(spec.pop("initial_size", 8)),
        schedule=build_schedule(spec.pop("schedule", None)),
        mobility=build_mobility(spec.pop("mobility", None)),
        tiers=build_tiers(spec.pop("tiers", None)),
        adversary=build_adversary(adversary_spec),
        **spec,
    )


def scenario_to_spec(scenario: Scenario) -> Dict[str, object]:
    """Invert :func:`build_scenario` for spec-expressible scenarios."""
    spec: Dict[str, object] = {
        "name": scenario.name,
        "initial_size": scenario.initial_size,
        "seed": seed_to_spec(scenario.seed),
    }
    if scenario.schedule is not None:
        spec["schedule"] = schedule_to_spec(scenario.schedule)
    if scenario.mobility is not None:
        spec["mobility"] = mobility_to_spec(scenario.mobility)
    if scenario.tiers is not None:
        spec["tiers"] = tiers_to_spec(scenario.tiers)
    if scenario.adversary is not None:
        spec["adversary"] = adversary_to_spec(scenario.adversary)
    if scenario.loss_probability != 0.0:
        spec["loss_probability"] = scenario.loss_probability
    if scenario.max_retries != 10:
        spec["max_retries"] = scenario.max_retries
    if scenario.min_group_size != 3:
        spec["min_group_size"] = scenario.min_group_size
    if scenario.member_prefix != "member":
        spec["member_prefix"] = scenario.member_prefix
    return spec
