"""``python -m repro.sim`` — run a scenario spec without writing a script.

The spec is a JSON object describing one :class:`~repro.sim.scenarios.Scenario`::

    {
      "name": "burst-demo",
      "initial_size": 10,
      "seed": 7,
      "loss_probability": 0.05,
      "schedule": {"kind": "poisson", "length": 12, "join_rate": 2.0,
                   "leave_rate": 2.0},
      "adversary": {"injector": true}
    }

``schedule.kind`` is one of ``poisson`` / ``bursts`` / ``merges`` (remaining
keys are passed to the matching schedule class), or the key may be omitted
for a churn-free scenario.  A ``mobility`` object replaces ``schedule`` for
mobility-driven runs::

    "mobility": {"model": "random-waypoint", "min_speed": 2.0,
                 "max_speed": 10.0, "area": [500, 500], "tx_range": 150,
                 "duration": 60, "tick": 2.0, "edge_loss": 0.1}

``adversary`` is either an object of
:class:`~repro.adversary.config.AdversaryConfig` fields or (via the
``--adversary`` flag, which overrides the spec) a preset name:
``eavesdrop``, ``inject``, ``replay``, ``mitm``, ``drop``, ``delay``,
``compromise``.

Examples::

    python -m repro.sim spec.json
    python -m repro.sim spec.json --protocols proposed-gka,bd,ssn \\
        --adversary mitm --engine radio --csv out.csv --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..adversary.config import ATTACKER_PRESETS, AdversaryConfig
from ..core.base import SystemSetup
from ..core.registry import available_protocols
from ..energy.transceiver import RADIO_100KBPS, WLAN_SPECTRUM24
from ..engine.executor import EngineConfig
from ..engine.latency import FixedLatency, TransceiverLatency
from ..exceptions import ParameterError, ReproError
from ..mobility.config import MobilityConfig
from ..mobility.field import Area
from ..mobility.models import RandomWaypoint, ReferencePointGroup, StaticGrid
from .report import comparison_csv, comparison_json, comparison_table
from .runner import ScenarioRunner
from .scenarios import (
    BurstPartitions,
    ChurnSchedule,
    PeriodicMerges,
    PoissonChurn,
    Scenario,
)

_SCHEDULES = {
    "poisson": PoissonChurn,
    "bursts": BurstPartitions,
    "merges": PeriodicMerges,
}

_MOBILITY_MODELS = {
    "static-grid": StaticGrid,
    "random-waypoint": RandomWaypoint,
    "rpgm": ReferencePointGroup,
}


def _build_schedule(spec: Optional[dict]) -> Optional[ChurnSchedule]:
    if spec is None:
        return None
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in _SCHEDULES:
        raise ParameterError(
            f"schedule.kind must be one of {sorted(_SCHEDULES)}, got {kind!r}"
        )
    return _SCHEDULES[kind](**spec)


def _build_mobility(spec: Optional[dict]) -> Optional[MobilityConfig]:
    if spec is None:
        return None
    spec = dict(spec)
    model_name = spec.pop("model", "random-waypoint")
    if model_name not in _MOBILITY_MODELS:
        raise ParameterError(
            f"mobility.model must be one of {sorted(_MOBILITY_MODELS)}, got {model_name!r}"
        )
    model_cls = _MOBILITY_MODELS[model_name]
    model_fields = {
        name: spec.pop(name)
        for name in list(spec)
        if name in getattr(model_cls, "__dataclass_fields__", {})
    }
    area = spec.pop("area", [500.0, 500.0])
    return MobilityConfig(
        model=model_cls(**model_fields),
        area=Area(float(area[0]), float(area[1])),
        **spec,
    )


def _build_adversary(spec: object) -> Optional[AdversaryConfig]:
    if spec is None:
        return None
    if isinstance(spec, AdversaryConfig):
        return spec
    if isinstance(spec, str):
        text = spec.strip()
        if text.startswith("{"):
            return AdversaryConfig(**json.loads(text))
        return AdversaryConfig.preset(text)
    if isinstance(spec, dict):
        return AdversaryConfig(**spec)
    raise ParameterError(f"cannot build an adversary from {spec!r}")


def _build_engine(text: Optional[str]) -> Optional[EngineConfig]:
    if text is None or text == "instant":
        return None
    if text == "radio":
        return EngineConfig(latency=TransceiverLatency(RADIO_100KBPS))
    if text == "wlan":
        return EngineConfig(latency=TransceiverLatency(WLAN_SPECTRUM24))
    if text.startswith("fixed:"):
        return EngineConfig(latency=FixedLatency(float(text.split(":", 1)[1])))
    raise ParameterError(
        f"unknown engine profile {text!r}; use instant, radio, wlan or fixed:<seconds>"
    )


def build_scenario(spec: dict, *, adversary_override: Optional[str] = None) -> Scenario:
    """Turn a parsed JSON spec into a :class:`Scenario`."""
    spec = dict(spec)
    adversary_spec = spec.pop("adversary", None)
    if adversary_override is not None:
        adversary_spec = adversary_override
    return Scenario(
        name=spec.pop("name", "cli-scenario"),
        initial_size=int(spec.pop("initial_size", 8)),
        schedule=_build_schedule(spec.pop("schedule", None)),
        mobility=_build_mobility(spec.pop("mobility", None)),
        adversary=_build_adversary(adversary_spec),
        **spec,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Run a JSON scenario spec under one or more protocols "
        "and emit the cross-protocol comparison.",
    )
    parser.add_argument("spec", help="path to the scenario spec JSON ('-' for stdin)")
    parser.add_argument(
        "--protocols",
        default=None,
        help="comma-separated registry names (default: every registered protocol)",
    )
    parser.add_argument(
        "--adversary",
        default=None,
        help=f"attacker preset ({', '.join(ATTACKER_PRESETS)}) or inline JSON; "
        "overrides the spec's own adversary",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="execution profile: instant (default), radio, wlan, or fixed:<seconds>",
    )
    parser.add_argument(
        "--params",
        default="test",
        choices=("test", "paper"),
        help="parameter sizes: fast 256-bit test sets (default) or the paper's 1024-bit",
    )
    parser.add_argument("--csv", default=None, help="write the comparison CSV here")
    parser.add_argument("--json", default=None, help="write the comparison JSON here")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the comparison table on stdout"
    )
    args = parser.parse_args(argv)

    try:
        if args.spec == "-":
            spec = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as handle:
                spec = json.load(handle)
        scenario = build_scenario(spec, adversary_override=args.adversary)
        engine = _build_engine(args.engine)
    except (ReproError, OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
        # TypeError/ValueError cover mistyped spec keys reaching a dataclass
        # constructor — a one-character typo should print, not traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.params == "paper":
            setup = SystemSetup.from_param_sets()
        else:
            setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
        protocols = (
            [name.strip() for name in args.protocols.split(",") if name.strip()]
            if args.protocols
            else available_protocols()
        )
        runner = ScenarioRunner(setup, engine=engine, check_agreement=False)
        reports = [runner.run(name, scenario) for name in protocols]
    except ReproError as exc:
        # Once the spec has parsed, only library failures are expected —
        # anything else is a bug and should traceback, not masquerade as a
        # spec error.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.csv:
        comparison_csv(reports, args.csv)
    if args.json:
        comparison_json(reports, args.json)
    if not args.quiet:
        print(comparison_table(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
