"""``python -m repro.sim`` — run a scenario spec without writing a script.

The spec is a JSON object describing one :class:`~repro.sim.scenarios.Scenario`::

    {
      "name": "burst-demo",
      "initial_size": 10,
      "seed": 7,
      "loss_probability": 0.05,
      "schedule": {"kind": "poisson", "length": 12, "join_rate": 2.0,
                   "leave_rate": 2.0},
      "adversary": {"injector": true}
    }

``schedule.kind`` is one of ``poisson`` / ``bursts`` / ``merges`` (remaining
keys are passed to the matching schedule class) or ``trace`` (an explicit
``events`` list of ``{"kind": "join"|"leave"|"merge"|"partition", ...}``
entries), or the key may be omitted for a churn-free scenario.  A ``mobility`` object replaces ``schedule`` for
mobility-driven runs::

    "mobility": {"model": "random-waypoint", "min_speed": 2.0,
                 "max_speed": 10.0, "area": [500, 500], "tx_range": 150,
                 "duration": 60, "tick": 2.0, "edge_loss": 0.1}

``adversary`` is either an object of
:class:`~repro.adversary.config.AdversaryConfig` fields or (via the
``--adversary`` flag, which overrides the spec) a preset name:
``eavesdrop``, ``inject``, ``replay``, ``mitm``, ``drop``, ``delay``,
``compromise``.

Examples::

    python -m repro.sim spec.json
    python -m repro.sim spec.json --protocols proposed-gka,bd,ssn \\
        --adversary mitm --engine radio --csv out.csv --json out.json
    python -m repro.sim --list-protocols
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..adversary.config import ATTACKER_PRESETS
from ..backends.registry import available_backends, set_default_backend
from ..core.base import SystemSetup
from ..core.registry import available_protocols, describe_registry
from ..exceptions import ReproError
from ..profiling import observability
from .report import comparison_csv, comparison_json, comparison_table
from .runner import ScenarioRunner
from .specio import build_engine, build_scenario

__all__ = ["build_scenario", "main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Run a JSON scenario spec under one or more protocols "
        "and emit the cross-protocol comparison.",
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to the scenario spec JSON ('-' for stdin)",
    )
    parser.add_argument(
        "--protocols",
        default=None,
        help="comma-separated registry names (default: every registered protocol)",
    )
    parser.add_argument(
        "--list-protocols",
        action="store_true",
        help="print the protocol registry (names, aliases, tags) and exit",
    )
    parser.add_argument(
        "--adversary",
        default=None,
        help=f"attacker preset ({', '.join(ATTACKER_PRESETS)}) or inline JSON; "
        "overrides the spec's own adversary",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="execution profile: instant (default), radio, wlan, or fixed:<seconds>",
    )
    parser.add_argument(
        "--params",
        default="test",
        choices=("test", "paper"),
        help="parameter sizes: fast 256-bit test sets (default) or the paper's 1024-bit",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="crypto backend for the whole run "
        f"({', '.join(available_backends())}; default: $REPRO_CRYPTO_BACKEND or pure)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run phase and print the top cumulative hotspots to stderr",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record dual-clock spans for the run phase; *.jsonl writes span "
        "JSONL, anything else a Perfetto-loadable Chrome trace",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/histograms during the run and print the "
        "summary table to stderr",
    )
    parser.add_argument("--csv", default=None, help="write the comparison CSV here")
    parser.add_argument("--json", default=None, help="write the comparison JSON here")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the comparison table on stdout"
    )
    args = parser.parse_args(argv)

    if args.list_protocols:
        print(describe_registry())
        return 0
    if args.spec is None:
        parser.error("spec is required unless --list-protocols is given")

    try:
        if args.spec == "-":
            spec = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as handle:
                spec = json.load(handle)
        scenario = build_scenario(spec, adversary_override=args.adversary)
        engine = build_engine(args.engine)
        if args.backend is not None:
            set_default_backend(args.backend)
    except (ReproError, OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
        # TypeError/ValueError cover mistyped spec keys reaching a dataclass
        # constructor — a one-character typo should print, not traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.params == "paper":
            setup = SystemSetup.from_param_sets()
        else:
            setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
        protocols = (
            [name.strip() for name in args.protocols.split(",") if name.strip()]
            if args.protocols
            else available_protocols()
        )
        runner = ScenarioRunner(setup, engine=engine, check_agreement=False)
        with observability(
            profile=args.profile, trace=args.trace, metrics=args.metrics
        ):
            reports = [runner.run(name, scenario) for name in protocols]
    except ReproError as exc:
        # Once the spec has parsed, only library failures are expected —
        # anything else is a bug and should traceback, not masquerade as a
        # spec error.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.csv:
        comparison_csv(reports, args.csv)
    if args.json:
        comparison_json(reports, args.json)
    if not args.quiet:
        print(comparison_table(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
