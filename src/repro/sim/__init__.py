"""``repro.sim`` — declarative scenario and churn simulation engine.

The paper's argument is comparative: the proposed ID-based GKA against the
BD/SSN baselines *under dynamic membership*.  This subsystem turns that
comparison into a repeatable experiment pipeline:

* :mod:`repro.sim.scenarios` — declarative churn schedules (Poisson
  join/leave, burst partitions, periodic merges, trace replay) bundled into a
  :class:`~repro.sim.scenarios.Scenario`;
* :mod:`repro.sim.runner` — :class:`~repro.sim.runner.ScenarioRunner` drives
  any registry-selected protocol through a scenario's event stream on a
  shared :class:`~repro.network.medium.BroadcastMedium`, recording per-event
  energy, message, bit and wall-time metrics;
* :mod:`repro.sim.report` — :class:`~repro.sim.report.ScenarioReport`
  aggregates those records into totals, per-kind and per-member summaries
  that are directly comparable across protocols, with CSV/JSON export.

Scenarios can also be *mobility-driven*: embed a
:class:`~repro.mobility.config.MobilityConfig` instead of a schedule and the
network layer simulates node positions, distance-dependent radio links and
multi-hop relaying, with partition/merge churn emitted by a connectivity
monitor as the topology changes (see :mod:`repro.mobility`).

Scenarios can run *under attack*: embed an
:class:`~repro.adversary.config.AdversaryConfig` and the runner fields the
configured attacker suite against every protocol step, evaluating the
security oracles (:mod:`repro.adversary.oracles`) after each one — records,
reports and comparison exports then carry ``attacks``/``detected`` counts and
per-oracle verdicts next to the energy numbers.

The module is also runnable: ``python -m repro.sim spec.json`` executes a
JSON scenario spec (optionally with ``--adversary``/``--engine`` profiles)
and emits the comparison table/CSV/JSON without writing a script.  The spec
format itself lives in :mod:`repro.sim.specio` (``build_scenario`` and the
``*_to_spec`` inverses) — the serialization boundary the
:mod:`repro.campaign` process-pool sweeps hand their cells across.

Quickstart::

    from repro import SystemSetup
    from repro.sim import PoissonChurn, Scenario, ScenarioRunner, comparison_table

    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    scenario = Scenario(
        name="poisson-demo",
        initial_size=10,
        schedule=PoissonChurn(length=20, join_rate=2.0, leave_rate=2.0),
        seed=7,
    )
    runner = ScenarioRunner(setup)
    reports = [runner.run(name, scenario) for name in ("proposed", "bd", "ssn")]
    print(comparison_table(reports))
"""

from ..adversary.config import AdversaryConfig
from .report import (
    EventRecord,
    KindSummary,
    ScenarioReport,
    comparison_csv,
    comparison_json,
    comparison_table,
)
from .runner import ScenarioRunner
from .specio import build_scenario, scenario_to_spec
from .scenarios import (
    BurstPartitions,
    ChurnSchedule,
    PeriodicMerges,
    PoissonChurn,
    Scenario,
    ScheduledEvent,
    TraceReplay,
)

__all__ = [
    "AdversaryConfig",
    "BurstPartitions",
    "ChurnSchedule",
    "EventRecord",
    "KindSummary",
    "PeriodicMerges",
    "PoissonChurn",
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "ScheduledEvent",
    "TraceReplay",
    "build_scenario",
    "comparison_csv",
    "comparison_json",
    "comparison_table",
    "scenario_to_spec",
]
