"""Authenticated symmetric encryption ``E_K(m)`` for the dynamic protocols.

The paper's Join/Leave/Merge/Partition protocols repeatedly perform the step
"encrypt ``K* || U_1`` using the current group key K ... the receiver checks
if the identity ``U_1`` is decrypted correctly to ensure the validity of
``K*``".  That check is only meaningful when the encryption is *authenticated*
(otherwise a ciphertext can be malleated without disturbing the embedded
identity), so the reproduction implements ``E_K`` as AES-CTR followed by
HMAC-SHA256 (encrypt-then-MAC), with the sender identity carried inside the
plaintext exactly as the paper specifies.

Key material: the group key ``K`` is a ~1024-bit group element; it is run
through the HKDF in :mod:`repro.hashing.kdf` to obtain independent 128-bit
encryption and MAC keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DecryptionError, ParameterError
from ..hashing.hmac_impl import hmac_sha256, verify_hmac
from ..hashing.kdf import derive_key, derive_key_from_group_element
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import bytes_to_int, decode_fields, encode_fields, int_to_bytes
from .modes import decrypt_ctr, encrypt_ctr

__all__ = ["AuthenticatedCiphertext", "SymmetricEnvelope", "group_key_to_bytes"]

_NONCE_BYTES = 12
_TAG_BYTES = 32


def group_key_to_bytes(group_key: int) -> bytes:
    """Canonical byte encoding of a group-element key for use with ``E_K``."""
    if group_key <= 0:
        raise ParameterError("group key must be a positive group element")
    return int_to_bytes(group_key)


@dataclass(frozen=True)
class AuthenticatedCiphertext:
    """Wire form of one ``E_K(m)`` envelope: nonce, ciphertext and MAC tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialise for transmission / size accounting."""
        return encode_fields([self.nonce, self.ciphertext, self.tag])

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AuthenticatedCiphertext":
        """Parse the output of :meth:`to_bytes`."""
        nonce, ciphertext, tag = decode_fields(blob)
        return cls(nonce=nonce, ciphertext=ciphertext, tag=tag)

    @property
    def wire_bits(self) -> int:
        """Total size in bits (what the transceiver energy model charges)."""
        return 8 * len(self.to_bytes())


class SymmetricEnvelope:
    """Encrypt/decrypt ``payload || sender-identity`` under a shared key.

    Parameters
    ----------
    key_material:
        Either the raw group key as an ``int`` group element, or already-derived
        key bytes.  Separate encryption and MAC keys are derived internally.
    """

    def __init__(self, key_material: int | bytes) -> None:
        if isinstance(key_material, int):
            master = group_key_to_bytes(key_material)
        elif isinstance(key_material, (bytes, bytearray)):
            if not key_material:
                raise ParameterError("empty symmetric key material")
            master = bytes(key_material)
        else:
            raise ParameterError("key material must be an int group element or bytes")
        self._enc_key = derive_key(master, info=b"repro/envelope/enc", length=16)
        self._mac_key = derive_key(master, info=b"repro/envelope/mac", length=32)

    # ------------------------------------------------------------------ seal
    def seal(self, payload: bytes, sender_identity: bytes, rng: DeterministicRNG) -> AuthenticatedCiphertext:
        """Produce ``E_K(payload || sender_identity)``.

        The identity is embedded in the plaintext (as in the paper) *and* the
        whole ciphertext is MACed, so both tampering and wrong-key decryption
        are detected.
        """
        plaintext = encode_fields([payload, sender_identity])
        nonce = rng.random_bytes(_NONCE_BYTES)
        ciphertext = encrypt_ctr(self._enc_key, nonce, plaintext)
        tag = hmac_sha256(self._mac_key, nonce + ciphertext)
        return AuthenticatedCiphertext(nonce=nonce, ciphertext=ciphertext, tag=tag)

    # ------------------------------------------------------------------ open
    def open(self, envelope: AuthenticatedCiphertext, expected_sender: bytes) -> bytes:
        """Decrypt and verify; returns the payload bytes.

        Raises
        ------
        DecryptionError
            If the MAC fails or the embedded identity does not match
            ``expected_sender`` — this is the paper's "checks if the identity
            ... is decrypted correctly" step.
        """
        if len(envelope.nonce) != _NONCE_BYTES:
            raise DecryptionError("malformed nonce")
        if not verify_hmac(self._mac_key, envelope.nonce + envelope.ciphertext, envelope.tag):
            raise DecryptionError("MAC verification failed")
        plaintext = decrypt_ctr(self._enc_key, envelope.nonce, envelope.ciphertext)
        try:
            payload, sender = decode_fields(plaintext)
        except Exception as exc:  # malformed structure implies wrong key/tampering
            raise DecryptionError("malformed plaintext structure") from exc
        if sender != expected_sender:
            raise DecryptionError(
                f"sender identity mismatch: expected {expected_sender!r}, got {sender!r}"
            )
        return payload

    # ------------------------------------------------------------- int sugar
    def seal_group_element(
        self, element: int, sender_identity: bytes, rng: DeterministicRNG
    ) -> AuthenticatedCiphertext:
        """Encrypt an integer group element (e.g. ``K*`` or a DH key)."""
        return self.seal(int_to_bytes(element), sender_identity, rng)

    def open_group_element(self, envelope: AuthenticatedCiphertext, expected_sender: bytes) -> int:
        """Decrypt an integer group element sealed by :meth:`seal_group_element`."""
        return bytes_to_int(self.open(envelope, expected_sender))
