"""Symmetric cryptography substrate: AES, block modes, authenticated envelopes."""

from .aes import AES
from .authenc import AuthenticatedCiphertext, SymmetricEnvelope, group_key_to_bytes
from .modes import (
    ctr_keystream,
    decrypt_cbc,
    decrypt_ctr,
    encrypt_cbc,
    encrypt_ctr,
    pkcs7_pad,
    pkcs7_unpad,
)

__all__ = [
    "AES",
    "AuthenticatedCiphertext",
    "SymmetricEnvelope",
    "group_key_to_bytes",
    "ctr_keystream",
    "decrypt_cbc",
    "decrypt_ctr",
    "encrypt_cbc",
    "encrypt_ctr",
    "pkcs7_pad",
    "pkcs7_unpad",
]
