"""Block-cipher modes of operation and padding for the AES substrate."""

from __future__ import annotations

from ..exceptions import DecryptionError, ParameterError
from .aes import AES

__all__ = ["pkcs7_pad", "pkcs7_unpad", "encrypt_cbc", "decrypt_cbc", "ctr_keystream", "encrypt_ctr", "decrypt_ctr"]


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """Apply PKCS#7 padding up to ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ParameterError("block_size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Remove PKCS#7 padding, raising :class:`DecryptionError` on malformed input."""
    if not data or len(data) % block_size != 0:
        raise DecryptionError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise DecryptionError("invalid padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("invalid padding bytes")
    return data[:-pad_len]


def encrypt_cbc(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encryption with PKCS#7 padding."""
    if len(iv) != 16:
        raise ParameterError("CBC IV must be 16 bytes")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), 16):
        block = bytes(a ^ b for a, b in zip(padded[offset : offset + 16], previous))
        encrypted = cipher.encrypt_block(block)
        out += encrypted
        previous = encrypted
    return bytes(out)


def decrypt_cbc(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decryption with PKCS#7 unpadding."""
    if len(iv) != 16:
        raise ParameterError("CBC IV must be 16 bytes")
    if len(ciphertext) % 16 != 0:
        raise DecryptionError("CBC ciphertext must be a multiple of 16 bytes")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), 16):
        block = ciphertext[offset : offset + 16]
        decrypted = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of AES-CTR keystream for a 12-byte nonce."""
    if len(nonce) != 12:
        raise ParameterError("CTR nonce must be 12 bytes")
    cipher = AES(key)
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = nonce + counter.to_bytes(4, "big")
        out += cipher.encrypt_block(block)
        counter += 1
    return bytes(out[:length])


def encrypt_ctr(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """AES-CTR encryption (no padding required)."""
    keystream = ctr_keystream(key, nonce, len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, keystream))


def decrypt_ctr(key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    """AES-CTR decryption (identical to encryption)."""
    return encrypt_ctr(key, nonce, ciphertext)
