"""A from-scratch AES block cipher (AES-128/192/256).

The dynamic protocols of the paper (Join / Leave / Merge / Partition) encrypt
key-update material under the current group key using "a symmetric key
encryption E_k(m)".  The paper does not name a cipher; AES is the obvious
choice for 2006-era wireless devices, and Carman et al. (the paper's energy
reference [3]) measure AES-class symmetric costs as orders of magnitude below
modular exponentiation — which is exactly how the energy model treats them.

This is a straightforward, readable table-based implementation:

* key expansion for 128/192/256-bit keys,
* encryption and decryption of single 16-byte blocks,
* no side-channel hardening (this is a research simulator, not a production
  cipher) — the docstring says so explicitly.

Block modes (CTR, CBC) and padding live in :mod:`repro.symmetric.modes`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..exceptions import ParameterError

__all__ = ["AES"]


def _build_sbox() -> tuple:
    """Construct the AES S-box from first principles (GF(2^8) inversion + affine map)."""
    # Multiplicative inverse table in GF(2^8) with the AES polynomial 0x11B.
    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        res = 0
        for i in range(8):
            bit = (
                ((b >> i) & 1)
                ^ ((b >> ((i + 4) % 8)) & 1)
                ^ ((b >> ((i + 5) % 8)) & 1)
                ^ ((b >> ((i + 6) % 8)) & 1)
                ^ ((b >> ((i + 7) % 8)) & 1)
                ^ ((0x63 >> i) & 1)
            )
            res |= bit << i
        sbox[x] = res
    return tuple(sbox)


_SBOX = _build_sbox()
_INV_SBOX = tuple(_SBOX.index(i) for i in range(256))
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication used by (Inv)MixColumns."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES block cipher with a 128-, 192- or 256-bit key.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ParameterError("AES key must be 16, 24 or 32 bytes")
        self.key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    # ---------------------------------------------------------- key schedule
    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        nr = self._rounds
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        return words

    def _round_key(self, round_index: int) -> List[int]:
        words = self._round_keys[4 * round_index : 4 * round_index + 4]
        return [b for word in words for b in word]

    # ---------------------------------------------------------- block cipher
    @staticmethod
    def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: Sequence[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # state is column-major: state[r + 4c]
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
            state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
            state[4 * c + 1] = _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
            state[4 * c + 2] = _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
            state[4 * c + 3] = _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != 16:
            raise ParameterError("AES block must be exactly 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_key(0))
        for round_index in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_key(round_index))
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_key(self._rounds))
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != 16:
            raise ParameterError("AES block must be exactly 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_key(self._rounds))
        for round_index in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_key(round_index))
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_key(0))
        return bytes(state)
