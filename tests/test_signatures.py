"""Tests for the four signature schemes: GQ (plain and batch), DSA, ECDSA, SOK."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.groups.curves import TINY_CURVE
from repro.groups.pairing import SimulatedPairingGroup
from repro.hashing.hashfuncs import HashFunction
from repro.mathutils.modular import product_mod
from repro.mathutils.rand import DeterministicRNG
from repro.mathutils.serialization import int_to_bytes
from repro.pki import Identity, PrivateKeyGenerator
from repro.signatures import (
    DSASignatureScheme,
    ECDSASignatureScheme,
    GQSignatureScheme,
    SOKSignatureScheme,
    Signature,
    gq_batch_verify,
    gq_commitment,
    gq_response,
    gq_signature_bits,
)
from repro.signatures.base import OperationCount
from repro.signatures.gq import GQParameters


@pytest.fixture()
def gq_pkg(small_modulus) -> PrivateKeyGenerator:
    return PrivateKeyGenerator(small_modulus, HashFunction(output_bits=160))


@pytest.fixture()
def gq_identities(gq_pkg):
    identities = [gq_pkg.registry.create(f"signer-{i}") for i in range(4)]
    keys = [gq_pkg.extract(identity) for identity in identities]
    return identities, keys


class TestGQSignature:
    def test_sign_verify_roundtrip(self, gq_pkg, gq_identities, rng):
        identities, keys = gq_identities
        scheme = GQSignatureScheme(gq_pkg.params)
        signature = scheme.sign(keys[0], b"message", rng)
        assert scheme.verify(identities[0].to_bytes(), b"message", signature)

    def test_verify_accepts_precomputed_public_key(self, gq_pkg, gq_identities, rng):
        identities, keys = gq_identities
        scheme = GQSignatureScheme(gq_pkg.params)
        signature = scheme.sign(keys[0], b"message", rng)
        hid = gq_pkg.params.identity_public_key(identities[0].to_bytes())
        assert scheme.verify(hid, b"message", signature)

    def test_wrong_message_rejected(self, gq_pkg, gq_identities, rng):
        identities, keys = gq_identities
        scheme = GQSignatureScheme(gq_pkg.params)
        signature = scheme.sign(keys[0], b"message", rng)
        assert not scheme.verify(identities[0].to_bytes(), b"other", signature)

    def test_wrong_identity_rejected(self, gq_pkg, gq_identities, rng):
        identities, keys = gq_identities
        scheme = GQSignatureScheme(gq_pkg.params)
        signature = scheme.sign(keys[0], b"message", rng)
        assert not scheme.verify(identities[1].to_bytes(), b"message", signature)

    def test_tampered_signature_rejected(self, gq_pkg, gq_identities, rng):
        identities, keys = gq_identities
        scheme = GQSignatureScheme(gq_pkg.params)
        signature = scheme.sign(keys[0], b"message", rng)
        tampered = Signature(
            scheme="gq",
            components={"s": signature.component("s") + 1, "c": signature.component("c")},
            wire_bits=signature.wire_bits,
        )
        assert not scheme.verify(identities[0].to_bytes(), b"message", tampered)
        zero_s = Signature(scheme="gq", components={"s": 0, "c": 1}, wire_bits=0)
        assert not scheme.verify(identities[0].to_bytes(), b"message", zero_s)

    def test_signature_wire_size(self, gq_pkg):
        params = gq_pkg.params
        assert gq_signature_bits(params) == params.modulus_bits + 160
        assert GQSignatureScheme(params).signature_bits == gq_signature_bits(params)

    def test_paper_sized_signature_is_1184_bits(self):
        from repro.groups.params import get_gq_modulus

        params = GQParameters(
            n=get_gq_modulus("gq-1024").n,
            e=get_gq_modulus("gq-1024").e,
            hash_function=HashFunction(output_bits=160),
        )
        assert gq_signature_bits(params) == 1184

    def test_key_extraction_consistency(self, gq_pkg, gq_identities):
        # S_ID^e == H(ID) mod n, the defining equation of the extracted key.
        identities, keys = gq_identities
        params = gq_pkg.params
        for identity, key in zip(identities, keys):
            assert pow(key.secret, params.e, params.n) == params.identity_public_key(identity.to_bytes())

    def test_cost_models(self, gq_pkg):
        scheme = GQSignatureScheme(gq_pkg.params)
        assert scheme.sign_cost().sign_gen == 1
        assert scheme.verify_cost().sign_verify == 1

    def test_degenerate_params_rejected(self):
        with pytest.raises(ParameterError):
            GQParameters(n=2, e=1, hash_function=HashFunction())


class TestGQBatchVerification:
    def _run_batch(self, gq_pkg, gq_identities, rng, corrupt_index=None, wrong_bound=False):
        identities, keys = gq_identities
        params = gq_pkg.params
        commitments = [gq_commitment(params, rng) for _ in keys]
        big_t = product_mod((t for _, t in commitments), params.n)
        bound = int_to_bytes(424242)
        challenge = params.hash_function.challenge(int_to_bytes(big_t), bound)
        responses = [
            gq_response(params, key, tau, challenge) for key, (tau, _) in zip(keys, commitments)
        ]
        if corrupt_index is not None:
            responses[corrupt_index] = (responses[corrupt_index] + 1) % params.n
        if wrong_bound:
            bound = int_to_bytes(424243)
        return gq_batch_verify(
            params, [i.to_bytes() for i in identities], responses, challenge, bound
        )

    def test_honest_batch_accepts(self, gq_pkg, gq_identities, rng):
        assert self._run_batch(gq_pkg, gq_identities, rng)

    @pytest.mark.parametrize("index", [0, 1, 3])
    def test_single_corruption_detected(self, gq_pkg, gq_identities, rng, index):
        assert not self._run_batch(gq_pkg, gq_identities, rng, corrupt_index=index)

    def test_wrong_bound_data_detected(self, gq_pkg, gq_identities, rng):
        assert not self._run_batch(gq_pkg, gq_identities, rng, wrong_bound=True)

    def test_input_validation(self, gq_pkg, gq_identities):
        identities, _ = gq_identities
        params = gq_pkg.params
        with pytest.raises(ParameterError):
            gq_batch_verify(params, [i.to_bytes() for i in identities], [1], 2, b"z")
        with pytest.raises(ParameterError):
            gq_batch_verify(params, [], [], 2, b"z")

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_batch_size_sweep(self, size):
        pkg = PrivateKeyGenerator(
            __import__("repro.groups.params", fromlist=["get_gq_modulus"]).get_gq_modulus("gq-test-256"),
            HashFunction(output_bits=128),
        )
        rng = DeterministicRNG(size)
        identities = [pkg.registry.create(f"batch-{size}-{i}") for i in range(size)]
        keys = [pkg.extract(i) for i in identities]
        params = pkg.params
        commitments = [gq_commitment(params, rng) for _ in keys]
        big_t = product_mod((t for _, t in commitments), params.n)
        bound = int_to_bytes(size)
        challenge = params.hash_function.challenge(int_to_bytes(big_t), bound)
        responses = [gq_response(params, k, tau, challenge) for k, (tau, _) in zip(keys, commitments)]
        assert gq_batch_verify(params, [i.to_bytes() for i in identities], responses, challenge, bound)


class TestDSA:
    def test_roundtrip(self, small_group, rng, backend):
        scheme = DSASignatureScheme(small_group)
        keypair = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"hello", rng)
        assert scheme.verify(keypair, b"hello", signature)
        assert scheme.verify(keypair.public, b"hello", signature)

    def test_rejections(self, small_group, rng):
        scheme = DSASignatureScheme(small_group)
        keypair = scheme.generate_keypair(rng)
        other = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"hello", rng)
        assert not scheme.verify(keypair, b"bye", signature)
        assert not scheme.verify(other, b"hello", signature)
        bad = Signature(scheme="dsa", components={"r": 0, "s": signature.component("s")}, wire_bits=0)
        assert not scheme.verify(keypair, b"hello", bad)

    def test_signature_size(self, small_group):
        assert DSASignatureScheme(small_group).signature_bits == 2 * small_group.q_bits

    def test_cost_models(self, small_group):
        scheme = DSASignatureScheme(small_group)
        assert scheme.sign_cost().modexp == 1
        assert scheme.verify_cost().modexp == 2


class TestECDSA:
    def test_roundtrip_tiny_curve(self, rng, backend):
        scheme = ECDSASignatureScheme(TINY_CURVE, HashFunction(output_bits=12))
        keypair = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"hello", rng)
        assert scheme.verify(keypair, b"hello", signature)
        assert not scheme.verify(keypair, b"tampered", signature)

    def test_roundtrip_secp160r1(self, rng):
        scheme = ECDSASignatureScheme()
        keypair = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"paper-sized curve", rng)
        assert scheme.verify(keypair, b"paper-sized curve", signature)
        assert signature.wire_bits == 2 * 161  # secp160r1 order is 161 bits

    def test_wrong_key_rejected(self, rng):
        scheme = ECDSASignatureScheme(TINY_CURVE, HashFunction(output_bits=12))
        keypair = scheme.generate_keypair(rng)
        other = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"hello", rng)
        assert not scheme.verify(other, b"hello", signature)

    def test_invalid_public_key_type(self, rng):
        scheme = ECDSASignatureScheme(TINY_CURVE, HashFunction(output_bits=12))
        keypair = scheme.generate_keypair(rng)
        signature = scheme.sign(keypair, b"hello", rng)
        with pytest.raises(ParameterError):
            scheme.verify(12345, b"hello", signature)

    def test_cost_models(self):
        scheme = ECDSASignatureScheme(TINY_CURVE)
        assert scheme.sign_cost().scalar_mul == 1
        assert scheme.verify_cost().scalar_mul == 2


class TestSOK:
    @pytest.fixture()
    def sok(self, small_group):
        return SOKSignatureScheme(SimulatedPairingGroup(small_group))

    def test_roundtrip(self, sok, rng):
        master = sok.generate_master_key(rng)
        key = sok.extract(master, b"alice")
        signature = sok.sign(key, b"message", rng)
        assert sok.verify(b"alice", b"message", signature, master_public=master)
        assert sok.verify(key.q_id, b"message", signature, master_public=master.public)

    def test_rejections(self, sok, rng):
        master = sok.generate_master_key(rng)
        key = sok.extract(master, b"alice")
        signature = sok.sign(key, b"message", rng)
        assert not sok.verify(b"bob", b"message", signature, master_public=master)
        assert not sok.verify(b"alice", b"other", signature, master_public=master)
        wrong_master = sok.generate_master_key(rng)
        assert not sok.verify(b"alice", b"message", signature, master_public=wrong_master)

    def test_requires_master_public(self, sok, rng):
        master = sok.generate_master_key(rng)
        key = sok.extract(master, b"alice")
        signature = sok.sign(key, b"message", rng)
        with pytest.raises(ParameterError):
            sok.verify(b"alice", b"message", signature)

    def test_signature_size_matches_paper(self, sok):
        assert sok.signature_bits == 2 * 194

    def test_cost_models(self, sok):
        assert sok.verify_cost().pairing == 2
        assert sok.verify_cost().map_to_point == 1
        assert sok.sign_cost().scalar_mul == 2


class TestBatchVerification:
    """``batch_verify`` must agree with per-item ``verify`` on every input."""

    def _dsa(self, small_group):
        return DSASignatureScheme(small_group)

    def _ecdsa(self):
        return ECDSASignatureScheme(TINY_CURVE, HashFunction(output_bits=12))

    @staticmethod
    def _items(scheme, rng, k, prefix=b"msg"):
        items = []
        for index in range(k):
            keypair = scheme.generate_keypair(rng)
            message = prefix + b"|%d" % index
            items.append((keypair, message, scheme.sign(keypair, message, rng)))
        return items

    @staticmethod
    def _agrees(scheme, items, rng):
        scheme._verify_cache.clear()
        loop = [scheme.verify(pk, msg, sig) for pk, msg, sig in items]
        scheme._verify_cache.clear()
        batch = scheme.batch_verify(items, rng.fork("coefficients"))
        assert batch == loop
        return loop

    def test_dsa_accepts_honest_batch(self, small_group, rng, backend):
        scheme = self._dsa(small_group)
        items = self._items(scheme, rng, 6)
        assert self._agrees(scheme, items, rng) == [True] * 6

    def test_ecdsa_accepts_honest_batch(self, rng, backend):
        scheme = self._ecdsa()
        items = self._items(scheme, rng, 6)
        assert self._agrees(scheme, items, rng) == [True] * 6

    @pytest.mark.parametrize("scheme_name", ["dsa", "ecdsa"])
    def test_randomized_tampering_agrees_with_loop(self, small_group, rng, scheme_name):
        """Random forgeries of every flavour: batch == loop, element-wise.

        Each trial flips a random subset of a fresh batch using a random
        tamper per item — wrong message, wrong key, bumped ``s``, zeroed
        ``r`` — and checks element-wise agreement between the combined check
        (plus bisection) and the ground-truth loop.
        """
        scheme = self._dsa(small_group) if scheme_name == "dsa" else self._ecdsa()
        tamper_rng = DeterministicRNG("tamper", label=scheme_name)
        for trial in range(6):
            items = self._items(scheme, rng, 8, prefix=b"trial-%d" % trial)
            expected = [True] * len(items)
            for index in range(len(items)):
                if tamper_rng.randbelow(3) != 0:
                    continue
                public_key, message, signature = items[index]
                kind = tamper_rng.randbelow(4)
                if kind == 0:
                    items[index] = (public_key, message + b"!", signature)
                elif kind == 1:
                    other = scheme.generate_keypair(rng)
                    items[index] = (other, message, signature)
                elif kind == 2:
                    forged = Signature(
                        scheme=signature.scheme,
                        components={
                            "r": signature.component("r"),
                            "s": signature.component("s") ^ 1,
                        },
                        wire_bits=signature.wire_bits,
                        aux=signature.aux,
                    )
                    items[index] = (public_key, message, forged)
                else:
                    forged = Signature(
                        scheme=signature.scheme,
                        components={"r": 0, "s": signature.component("s")},
                        wire_bits=signature.wire_bits,
                        aux=signature.aux,
                    )
                    items[index] = (public_key, message, forged)
                expected[index] = False
            results = self._agrees(scheme, items, rng)
            # s^1 could in principle still verify; everything else must fail.
            for index, flag in enumerate(expected):
                if not flag:
                    assert results[index] is False or results[index] == scheme.verify(
                        *items[index]
                    )

    def test_single_forgery_bisected_to_exact_index(self, small_group, rng):
        scheme = self._dsa(small_group)
        items = self._items(scheme, rng, 9)
        public_key, message, _ = items[5]
        other = scheme.generate_keypair(rng)
        items[5] = (public_key, message, scheme.sign(other, message, rng))
        results = self._agrees(scheme, items, rng)
        assert results == [True] * 5 + [False] + [True] * 3

    def test_missing_aux_falls_back_to_individual_verify(self, small_group, rng):
        scheme = self._dsa(small_group)
        items = [
            (pk, msg, Signature(sig.scheme, sig.components, sig.wire_bits))
            for pk, msg, sig in self._items(scheme, rng, 4)
        ]
        assert all(not item[2].aux for item in items)
        assert self._agrees(scheme, items, rng) == [True] * 4

    def test_lying_but_consistent_aux_cannot_flip_the_outcome(self, small_group, rng):
        # An aux commitment that passes the consistency screen (v % q == r)
        # but is not the real g^k: the combined equation fails, bisection
        # lands on the ground-truth individual verify, and the honest
        # signature still accepts.
        scheme = self._dsa(small_group)
        items = self._items(scheme, rng, 4)
        public_key, message, signature = items[2]
        fake_v = signature.aux["v"] + scheme.group.q
        if fake_v < scheme.group.p:
            forged = Signature(
                signature.scheme, signature.components, signature.wire_bits, aux={"v": fake_v}
            )
            items[2] = (public_key, message, forged)
        assert self._agrees(scheme, items, rng) == [True] * 4

    def test_ecdsa_negated_commitment_cannot_flip_the_outcome(self, rng):
        # -R shares R's x-coordinate, so it passes the aux screen; the
        # combined check fails and bisection restores the true accept.
        scheme = self._ecdsa()
        items = self._items(scheme, rng, 4)
        public_key, message, signature = items[1]
        point = scheme.curve.point(signature.aux["vx"], signature.aux["vy"]).negate()
        forged = Signature(
            signature.scheme,
            signature.components,
            signature.wire_bits,
            aux={"vx": point.x, "vy": point.y},
        )
        items[1] = (public_key, message, forged)
        assert self._agrees(scheme, items, rng) == [True] * 4

    def test_rng_cannot_influence_outcomes(self, small_group, rng):
        scheme = self._dsa(small_group)
        items = self._items(scheme, rng, 5)
        items[3] = (items[3][0], items[3][1] + b"!", items[3][2])
        scheme._verify_cache.clear()
        first = scheme.batch_verify(items, DeterministicRNG("stream-a"))
        scheme._verify_cache.clear()
        second = scheme.batch_verify(items, DeterministicRNG("stream-b"))
        assert first == second == [True, True, True, False, True]

    def test_sok_uses_the_loop_fallback(self, small_group, rng):
        sok = SOKSignatureScheme(SimulatedPairingGroup(small_group))
        assert not sok.has_batch_form
        master = sok.generate_master_key(rng)
        items = []
        for index in range(3):
            identity = b"party-%d" % index
            key = sok.extract(master, identity)
            items.append((identity, b"round", sok.sign(key, b"round", rng)))
        items[1] = (b"someone-else", items[1][1], items[1][2])
        results = sok.batch_verify(items, rng.fork("x"), master_public=master)
        assert results == [True, False, True]

    def test_unknown_kwargs_rejected_where_batched(self, small_group, rng):
        scheme = self._dsa(small_group)
        assert scheme.has_batch_form
        with pytest.raises(ParameterError):
            scheme.batch_verify([], rng, master_public=object())


class TestOperationCount:
    def test_merge_and_add(self):
        a = OperationCount(modexp=1, sign_gen=1)
        b = OperationCount(modexp=2, pairing=3)
        merged = a + b
        assert merged.modexp == 3 and merged.sign_gen == 1 and merged.pairing == 3
        assert merged.as_dict()["modexp"] == 3
