"""Tests for the complexity/energy analysis layer (Tables 1, 4, 5, Figure 1)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DynamicComplexityParams,
    FIGURE1_GROUP_SIZES,
    INITIAL_PROTOCOLS,
    PAPER_TABLE5_J,
    dynamic_energy_table,
    figure1_ascii,
    figure1_csv,
    figure1_report,
    figure1_series,
    format_table,
    format_value,
    initial_gka_energy_j,
    table1_complexity,
    table4_complexity,
    to_csv,
)
from repro.energy import RADIO_100KBPS, WLAN_SPECTRUM24
from repro.exceptions import EnergyModelError, ParameterError


class TestTable1:
    def test_symbolic_and_concrete_views(self):
        symbolic = table1_complexity()
        assert set(symbolic) == set(INITIAL_PROTOCOLS)
        concrete = table1_complexity(100)
        assert concrete["proposed"]["exponentiations"] == 3
        assert concrete["proposed"]["signature_verifications"] == 1
        assert concrete["ssn"]["exponentiations"] == 204
        assert concrete["bd-ecdsa"]["certificate_verifications"] == 99
        assert concrete["bd-sok"]["map_to_point"] == 99
        assert concrete["bd-dsa"]["messages_rx"] == 198

    def test_all_protocols_share_message_pattern(self):
        concrete = table1_complexity(50)
        for row in concrete.values():
            assert row["messages_tx"] == 2
            assert row["messages_rx"] == 98

    def test_invalid_group_size(self):
        with pytest.raises(ParameterError):
            table1_complexity(1)

    def test_measured_counts_match_formulas(self, small_setup):
        # Cross-check the closed-form Table 1 against an executed run (n = 5).
        from repro.core import ProposedGKAProtocol
        from repro.pki import Identity

        members = [Identity(f"t1-{i}") for i in range(5)]
        result = ProposedGKAProtocol(small_setup).run(members, seed=1)
        expected = table1_complexity(5)["proposed"]
        recorder = result.state.recorders()["t1-0"]
        assert recorder.operation_count("modexp") == expected["exponentiations"]
        assert recorder.operation_count("sign_gen_gq") == expected["signature_generations"]
        assert recorder.operation_count("sign_ver_gq") == expected["signature_verifications"]
        assert recorder.messages_sent == expected["messages_tx"]
        assert recorder.messages_received == expected["messages_rx"]


class TestTable4:
    def test_paper_parameters(self):
        rows = table4_complexity(DynamicComplexityParams(n=100, m=20, k=2, ld=20))
        by_key = {(r.protocol, r.event): r for r in rows}
        assert by_key[("bd-rerun", "join")].messages == 202
        assert by_key[("bd-rerun", "leave")].messages == 198
        assert by_key[("bd-rerun", "merge")].messages == 240
        assert by_key[("bd-rerun", "partition")].messages == 160
        assert by_key[("proposed", "join")].messages == 5
        assert by_key[("proposed", "merge")].messages == 6
        assert by_key[("proposed", "leave")].messages == 50 + 100 - 2
        assert by_key[("proposed", "partition")].messages == 40 + 100 - 40
        for row in rows:
            if row.protocol == "proposed":
                assert row.signature_generations == 1
                assert row.signature_verifications == 1

    def test_rows_serialise(self):
        rows = table4_complexity()
        assert all(set(r.as_dict()) >= {"protocol", "event", "rounds", "messages"} for r in rows)

    def test_explicit_v_override(self):
        params = DynamicComplexityParams(n=10, ld=2, v=4)
        rows = {(r.protocol, r.event): r for r in table4_complexity(params)}
        assert rows[("proposed", "partition")].messages == 4 + 10 - 4


class TestFigure1:
    def test_proposed_scheme_is_cheapest_everywhere(self):
        series = figure1_series()
        for index in range(len(FIGURE1_GROUP_SIZES)):
            for transceiver in ("100kbps", "wlan"):
                ours = series[f"proposed/{transceiver}"][index]
                for protocol in INITIAL_PROTOCOLS:
                    if protocol == "proposed":
                        continue
                    assert ours < series[f"{protocol}/{transceiver}"][index]

    def test_sok_is_most_expensive_at_scale(self):
        series = figure1_series([100, 500])
        for index in range(2):
            for transceiver in ("100kbps", "wlan"):
                sok = series[f"bd-sok/{transceiver}"][index]
                for protocol in INITIAL_PROTOCOLS:
                    assert sok >= series[f"{protocol}/{transceiver}"][index]

    def test_energy_grows_with_group_size(self):
        series = figure1_series()
        for values in series.values():
            assert values == sorted(values)

    def test_wlan_cheaper_than_radio(self):
        series = figure1_series([100])
        for protocol in INITIAL_PROTOCOLS:
            assert series[f"{protocol}/wlan"][0] < series[f"{protocol}/100kbps"][0]

    def test_point_values_are_sane(self):
        # Proposed scheme at n=100 on WLAN: computation-dominated, well under 1 J.
        assert initial_gka_energy_j("proposed", 100, WLAN_SPECTRUM24) < 0.5
        # BD+SOK at n=500 on the radio: tens of Joules.
        assert initial_gka_energy_j("bd-sok", 500, RADIO_100KBPS) > 50
        with pytest.raises(EnergyModelError):
            initial_gka_energy_j("unknown", 10, WLAN_SPECTRUM24)
        with pytest.raises(EnergyModelError):
            initial_gka_energy_j("proposed", 1, WLAN_SPECTRUM24)

    def test_renderings(self):
        csv = figure1_csv([10, 50])
        assert "proposed/wlan" in csv and "n=10" in csv
        ascii_chart = figure1_ascii([10])
        assert "Figure 1" in ascii_chart and "(j)" in ascii_chart
        assert csv in figure1_report([10, 50])


class TestTable5:
    def test_matches_paper_within_tolerance(self):
        ours = dynamic_energy_table()
        for key, paper_j in PAPER_TABLE5_J.items():
            value = ours[key]
            # "others" rows are sub-millijoule and dominated by rounding in the
            # paper; allow a wider relative band there.
            tolerance = 0.35 if paper_j < 0.01 else 0.08
            assert abs(value - paper_j) / paper_j < tolerance, (key, value, paper_j)

    def test_proposed_beats_bd_rerun_for_every_event(self):
        ours = dynamic_energy_table()
        assert ours[("proposed", "join", "others")] < ours[("bd-rerun", "join", "incumbent")] / 100
        assert ours[("proposed", "leave", "odd")] < ours[("bd-rerun", "leave", "remaining")] / 5
        assert ours[("proposed", "merge", "controller_a")] < ours[("bd-rerun", "merge", "group_a")] / 10
        assert ours[("proposed", "partition", "even")] < ours[("bd-rerun", "partition", "remaining")] / 5

    def test_radio_is_more_expensive_than_wlan(self):
        wlan = dynamic_energy_table(transceiver=WLAN_SPECTRUM24)
        radio = dynamic_energy_table(transceiver=RADIO_100KBPS)
        for key in wlan:
            assert radio[key] > wlan[key]

    def test_parameter_scaling(self):
        small = dynamic_energy_table(DynamicComplexityParams(n=20, m=5, ld=5))
        large = dynamic_energy_table(DynamicComplexityParams(n=200, m=40, ld=40))
        assert large[("bd-rerun", "join", "incumbent")] > small[("bd-rerun", "join", "incumbent")]
        assert large[("proposed", "leave", "odd")] > small[("proposed", "leave", "odd")]
        # The proposed join's active roles are O(1): nearly flat in n.
        assert abs(
            large[("proposed", "join", "controller")] - small[("proposed", "join", "controller")]
        ) < 0.01


class TestRendering:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1.23456789, precision=3) == "1.235"
        assert format_value(0.0000012) == "1.20e-06"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["long-name", 22.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert len({len(line) for line in lines[2:]}) <= 2  # consistent widths

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert csv.splitlines()[0] == "a,b"
        assert "2.500000" in csv
