"""Tests for identities, the identity registry, the PKGs and the CA."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError, VerificationError
from repro.groups.pairing import SimulatedPairingGroup
from repro.hashing.hashfuncs import HashFunction
from repro.mathutils.rand import DeterministicRNG
from repro.pki import (
    Certificate,
    CertificateAuthority,
    DSA_CERT_BYTES,
    ECDSA_CERT_BYTES,
    IDENTITY_BITS,
    Identity,
    IdentityRegistry,
    PrivateKeyGenerator,
    SOKPrivateKeyGenerator,
)
from repro.signatures import DSASignatureScheme, ECDSASignatureScheme


class TestIdentity:
    def test_derived_value_is_deterministic(self):
        assert Identity("alice").value == Identity("alice").value
        assert Identity("alice").value != Identity("bob").value

    def test_explicit_value(self):
        identity = Identity("alice", value=0x12345678)
        assert identity.value == 0x12345678
        assert identity.to_bytes() == b"\x12\x34\x56\x78"

    def test_wire_size_is_32_bits(self):
        assert Identity("x").wire_bits == IDENTITY_BITS == 32
        assert len(Identity("x").to_bytes()) == 4

    def test_invalid_identities(self):
        with pytest.raises(ParameterError):
            Identity("")
        with pytest.raises(ParameterError):
            Identity("x", value=2**32)

    def test_string_forms(self):
        identity = Identity("node-1")
        assert str(identity) == "node-1"
        assert "node-1" in repr(identity)


class TestIdentityRegistry:
    def test_register_and_lookup(self):
        registry = IdentityRegistry()
        alice = registry.create("alice")
        assert registry.get("alice") == alice
        assert alice in registry
        assert len(registry) == 1
        assert list(registry) == [alice]

    def test_double_registration_is_idempotent(self):
        registry = IdentityRegistry()
        a1 = registry.create("alice")
        a2 = registry.register(Identity("alice"))
        assert a1 == a2
        assert len(registry) == 1

    def test_value_collision_rejected(self):
        registry = IdentityRegistry()
        registry.register(Identity("alice", value=7))
        with pytest.raises(ParameterError):
            registry.register(Identity("bob", value=7))
        with pytest.raises(ParameterError):
            registry.register(Identity("alice", value=8))

    def test_unknown_lookup_raises(self):
        with pytest.raises(ParameterError):
            IdentityRegistry().get("ghost")

    def test_create_many(self):
        registry = IdentityRegistry()
        identities = registry.create_many(5, prefix="sensor")
        assert len(identities) == 5
        assert identities[0].name == "sensor-000"
        assert len(registry) == 5


class TestGQPrivateKeyGenerator:
    def test_extraction_requires_registration(self, small_modulus):
        pkg = PrivateKeyGenerator(small_modulus)
        with pytest.raises(ParameterError):
            pkg.extract(Identity("unregistered"))

    def test_extracted_key_satisfies_gq_equation(self, small_modulus):
        pkg = PrivateKeyGenerator(small_modulus)
        identity = pkg.registry.create("alice")
        key = pkg.extract(identity)
        params = pkg.params
        assert pow(key.secret, params.e, params.n) == params.identity_public_key(identity.to_bytes())

    def test_extraction_is_cached(self, small_modulus):
        pkg = PrivateKeyGenerator(small_modulus)
        identity = pkg.registry.create("alice")
        assert pkg.extract(identity) is pkg.extract(identity)
        assert pkg.issued_count == 1

    def test_register_and_extract_shortcut(self, small_modulus):
        pkg = PrivateKeyGenerator(small_modulus)
        key = pkg.register_and_extract(Identity("bob"))
        assert key.identity == Identity("bob").to_bytes()

    def test_default_paper_parameters(self):
        pkg = PrivateKeyGenerator()
        assert pkg.params.modulus_bits == 1024

    def test_secret_not_in_repr(self, small_modulus):
        pkg = PrivateKeyGenerator(small_modulus)
        key = pkg.register_and_extract(Identity("carol"))
        assert str(key.secret) not in repr(key)


class TestSOKPrivateKeyGenerator:
    def test_extract_consistency(self, small_group):
        pairing = SimulatedPairingGroup(small_group)
        pkg = SOKPrivateKeyGenerator(pairing, DeterministicRNG("sok-pkg"))
        identity = pkg.registry.create("alice")
        key = pkg.extract(identity)
        # D_ID = s * Q_ID in the exponent representation of the simulator.
        assert key.d_id.exponent == (key.q_id.exponent * pkg.master_public.secret) % pairing.order
        assert pkg.extract(identity) is key

    def test_requires_registration(self, small_group):
        pkg = SOKPrivateKeyGenerator(SimulatedPairingGroup(small_group), DeterministicRNG(0))
        with pytest.raises(ParameterError):
            pkg.extract(Identity("ghost"))


class TestCertificateAuthority:
    @pytest.fixture()
    def ecdsa_ca(self):
        return CertificateAuthority(ECDSASignatureScheme(), DeterministicRNG("ca-ecdsa"))

    def test_issue_and_verify_ecdsa(self, ecdsa_ca, rng):
        scheme = ECDSASignatureScheme()
        subject_key = scheme.generate_keypair(rng)
        certificate = ecdsa_ca.issue(Identity("alice"), subject_key.public)
        assert ecdsa_ca.verify(certificate)
        ecdsa_ca.verify_or_raise(certificate)
        assert ecdsa_ca.issued(Identity("alice")) == certificate

    def test_issue_and_verify_dsa(self, small_group, rng):
        scheme = DSASignatureScheme(small_group)
        ca = CertificateAuthority(scheme, DeterministicRNG("ca-dsa"))
        subject_key = scheme.generate_keypair(rng)
        certificate = ca.issue(Identity("bob"), subject_key.public)
        assert ca.verify(certificate)

    def test_tampered_certificate_rejected(self, ecdsa_ca, rng):
        scheme = ECDSASignatureScheme()
        subject_key = scheme.generate_keypair(rng)
        certificate = ecdsa_ca.issue(Identity("alice"), subject_key.public)
        forged = Certificate(
            subject=Identity("mallory"),
            scheme=certificate.scheme,
            public_key_encoding=certificate.public_key_encoding,
            validity=certificate.validity,
            ca_signature=certificate.ca_signature,
            issuer=certificate.issuer,
        )
        assert not ecdsa_ca.verify(forged)
        with pytest.raises(VerificationError):
            ecdsa_ca.verify_or_raise(forged)

    def test_wrong_issuer_rejected(self, ecdsa_ca, rng):
        other_ca = CertificateAuthority(ECDSASignatureScheme(), DeterministicRNG("other"), name="other-ca")
        key = ECDSASignatureScheme().generate_keypair(rng)
        certificate = other_ca.issue(Identity("alice"), key.public)
        assert not ecdsa_ca.verify(certificate)

    def test_paper_wire_sizes(self, ecdsa_ca, small_group, rng):
        ecdsa_key = ECDSASignatureScheme().generate_keypair(rng)
        ecdsa_cert = ecdsa_ca.issue(Identity("a"), ecdsa_key.public)
        assert ecdsa_cert.wire_bits == 8 * ECDSA_CERT_BYTES == 688
        dsa_scheme = DSASignatureScheme(small_group)
        dsa_ca = CertificateAuthority(dsa_scheme, DeterministicRNG("dsa"))
        dsa_cert = dsa_ca.issue(Identity("b"), dsa_scheme.generate_keypair(rng).public)
        assert dsa_cert.wire_bits == 8 * DSA_CERT_BYTES == 2104

    def test_encode_public_key_validation(self, ecdsa_ca):
        from repro.groups.curves import TINY_CURVE

        with pytest.raises(ParameterError):
            CertificateAuthority.encode_public_key(TINY_CURVE.infinity)
        with pytest.raises(ParameterError):
            CertificateAuthority.encode_public_key("not-a-key")
        assert CertificateAuthority.encode_public_key(255) == b"\xff"
