"""The benchmark regression gate's metric-field checks.

``benchmarks/check_regression.py`` gates two things: module wall time
(one-sided — only slowdowns fail) and recorded domain metrics (two-sided —
energy totals, hit rates, latency percentiles and traced-overhead ratios are
deterministic or near-deterministic, so drift either way is a behaviour
change).  These tests pin the metric-side machinery: flattening, gate
matching (tightest matching substring wins), the pass/fail/disappeared
verdicts, and the end-to-end exit status through :func:`check`.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _artifact(directory: Path, name: str, wall: float, metrics: dict) -> None:
    payload = {"name": name, "total_wall_seconds": wall, "metrics": metrics}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestFlattenAndGates:
    def test_flatten_produces_dotted_numeric_fields(self):
        tree = {
            "energy": {"total_j": 1.5, "per_node": {"a": 0.5}},
            "cells": 4,
            "complete": True,  # booleans are not gateable quantities
            "label": "text",
        }
        flat = check_regression.flatten_metrics(tree)
        assert flat == {
            "energy.total_j": 1.5,
            "energy.per_node.a": 0.5,
            "cells": 4.0,
        }

    def test_tightest_matching_gate_wins(self):
        gates = {"energy": 0.01, "p95": 0.25, "latency": 0.10}
        assert check_regression._gate_for("run.energy.total_j", gates) == 0.01
        # Two substrings match: the stricter tolerance applies.
        assert check_regression._gate_for("latency.p95", gates) == 0.10
        assert check_regression._gate_for("cache.puts", gates) is None

    def test_parse_metric_gate(self):
        assert check_regression.parse_metric_gate("energy=0.05") == {"energy": 0.05}
        with pytest.raises(ValueError):
            check_regression.parse_metric_gate("no-separator")
        with pytest.raises(ValueError):
            check_regression.parse_metric_gate("=0.1")


class TestCheckMetrics:
    GATES = {"energy": 0.01}

    def test_within_tolerance_passes(self, capsys):
        fresh = {"metrics": {"energy_j": 1.000}}
        base = {"metrics": {"energy_j": 1.005}}
        assert check_regression.check_metrics("m", fresh, base, self.GATES) == []
        assert "ok" in capsys.readouterr().out

    def test_drift_fails_in_both_directions(self):
        base = {"metrics": {"energy_j": 1.0}}
        up = {"metrics": {"energy_j": 1.10}}
        down = {"metrics": {"energy_j": 0.90}}
        assert check_regression.check_metrics("m", up, base, self.GATES) == [
            "m.energy_j"
        ]
        assert check_regression.check_metrics("m", down, base, self.GATES) == [
            "m.energy_j"
        ]

    def test_new_field_is_reported_not_gated(self, capsys):
        fresh = {"metrics": {"energy_j": 1.0}}
        assert check_regression.check_metrics("m", fresh, {}, self.GATES) == []
        assert "new, not gated" in capsys.readouterr().out

    def test_disappeared_field_fails(self, capsys):
        base = {"metrics": {"energy_j": 1.0}}
        failures = check_regression.check_metrics("m", {}, base, self.GATES)
        assert failures == ["m.energy_j"]
        assert "field disappeared" in capsys.readouterr().out

    def test_zero_baseline_only_matches_zero(self):
        base = {"metrics": {"energy_j": 0.0}}
        assert check_regression.check_metrics(
            "m", {"metrics": {"energy_j": 0.0}}, base, self.GATES
        ) == []
        assert check_regression.check_metrics(
            "m", {"metrics": {"energy_j": 0.1}}, base, self.GATES
        ) == ["m.energy_j"]

    def test_ungated_fields_never_fail(self):
        base = {"metrics": {"cells": 2}}
        fresh = {"metrics": {"cells": 200}}
        assert check_regression.check_metrics("m", fresh, base, self.GATES) == []


class TestCheckEndToEnd:
    def test_metric_regression_fails_the_gate(self, tmp_path, capsys):
        fresh, baseline = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), baseline.mkdir()
        _artifact(fresh, "mod", 1.0, {"energy_j": 2.0})
        _artifact(baseline, "mod", 1.0, {"energy_j": 1.0})
        failures = check_regression.check(
            fresh, baseline, 0.25, {"energy": 0.01}
        )
        assert failures == 1
        assert "metric regression" in capsys.readouterr().out

    def test_clean_run_passes_and_faster_is_fine(self, tmp_path):
        fresh, baseline = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), baseline.mkdir()
        _artifact(fresh, "mod", 0.5, {"energy_j": 1.0})  # 2x faster: one-sided ok
        _artifact(baseline, "mod", 1.0, {"energy_j": 1.0})
        assert check_regression.check(fresh, baseline, 0.25, {"energy": 0.01}) == 0

    def test_cli_metric_gate_override(self, tmp_path):
        fresh, baseline = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), baseline.mkdir()
        _artifact(fresh, "mod", 1.0, {"traced_overhead": 1.2})
        _artifact(baseline, "mod", 1.0, {"traced_overhead": 1.0})
        argv = ["--fresh", str(fresh), "--baseline", str(baseline)]
        # Default overhead gate (25%) tolerates the 20% drift...
        assert check_regression.main(argv) == 0
        # ...a tightened CLI gate does not.
        assert check_regression.main(argv + ["--metric-gate", "overhead=0.1"]) == 1
