"""The telemetry subsystem: spans, metrics, zero-overhead, bit-identity.

The contract under test is the one ``repro.telemetry`` documents:

* **observation-only** — enabling tracing/metrics changes *nothing* a run
  produces: one golden-fixture workload is re-asserted byte-identical under
  an active session, and a fleet run with telemetry on still matches
  ``run_campaign(workers=1)`` row for row;
* **zero-overhead-when-disabled** — no tracer/registry installed means the
  helpers are no-ops and instrumented hot paths take their historical
  branches;
* **mergeable snapshots** — :func:`repro.telemetry.merge_snapshots` is
  associative and commutative (counters add, gauges max, histogram buckets
  add), which is what lets the fleet controller fold worker snapshots in
  arrival order;
* **exportable** — span JSONL and Chrome trace-event JSON (Perfetto's
  format: metadata events naming processes/threads, ``X`` duration events in
  µs, ``i`` instants), with both the wall and the virtual sim clock.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
from typing import List

import pytest

from repro import telemetry
from repro.campaign import CampaignSpec, NONDETERMINISTIC_FIELDS, run_campaign
from repro.campaign.cache import ResultCache
from repro.core.base import SystemSetup
from repro.fleet import run_fleet_campaign
from repro.sim.runner import ScenarioRunner
from repro.sim.scenarios import PoissonChurn, Scenario
from repro.sim.specio import build_engine
from repro.telemetry import (
    MetricsRegistry,
    Span,
    Tracer,
    histogram_percentile,
    merge_snapshots,
    render_metrics_table,
    summary_fields,
)


@pytest.fixture(scope="module")
def setup_256() -> SystemSetup:
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.count("msgs")
        registry.count("msgs", 4)
        registry.set_gauge("depth", 3.0)
        registry.set_gauge("depth", 1.0)  # value drops, peak stays
        registry.gauge_max("depth", 2.0)  # raises the value, not the peak
        for value in (0.5, 1.5, 4.0, 1024.0):
            registry.observe("lat", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["msgs"] == 5
        assert snapshot["gauges"]["depth"] == {"value": 2.0, "peak": 3.0}
        hist = snapshot["histograms"]["lat"]
        assert hist["count"] == 4
        assert hist["min"] == 0.5 and hist["max"] == 1024.0
        assert hist["sum"] == pytest.approx(1030.0)

    def test_histogram_percentiles_clamped_to_exact_range(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 100.0):
            registry.observe("h", value)
        hist = registry.snapshot()["histograms"]["h"]
        assert histogram_percentile(hist, 0.0) >= 1.0
        assert histogram_percentile(hist, 1.0) == 100.0  # clamped to max
        assert 1.0 <= histogram_percentile(hist, 0.5) <= 100.0
        assert histogram_percentile({"count": 0}, 0.5) == 0.0

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.set_gauge("g", 2.5)
        registry.observe("h", 0.125)
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()

    def test_merge_is_associative_and_commutative(self):
        def make(seed: int):
            registry = MetricsRegistry()
            registry.count("msgs", seed * 3 + 1)
            registry.set_gauge("depth", float(seed))
            for k in range(seed + 1):
                registry.observe("lat", 0.5 * (k + 1) * (seed + 1))
            return registry.snapshot()

        parts = [make(seed) for seed in range(4)]
        reference = merge_snapshots(parts)
        for ordering in itertools.permutations(parts):
            assert merge_snapshots(ordering) == reference
        # Associativity: fold in arbitrary groupings.
        grouped = merge_snapshots(
            [merge_snapshots(parts[:2]), merge_snapshots(parts[2:])]
        )
        assert grouped == reference
        # And the totals are the sums/maxes of the parts.
        assert reference["counters"]["msgs"] == sum(
            part["counters"]["msgs"] for part in parts
        )
        assert reference["gauges"]["depth"]["peak"] == 3.0
        assert reference["histograms"]["lat"]["count"] == sum(
            part["histograms"]["lat"]["count"] for part in parts
        )

    def test_merge_with_empty_is_identity(self):
        registry = MetricsRegistry()
        registry.count("x", 7)
        snapshot = registry.snapshot()
        assert merge_snapshots([snapshot, {}]) == merge_snapshots([snapshot])

    def test_render_table_and_summary_fields(self):
        registry = MetricsRegistry()
        registry.count("engine.tx.messages", 12)
        registry.set_gauge("engine.queue_depth", 9.0)
        registry.observe("scenario.step_wall_s", 0.25)
        table = render_metrics_table(registry.snapshot(), title="t")
        assert "--- t ---" in table
        assert "engine.tx.messages" in table and "12" in table
        fields = summary_fields(registry.snapshot())
        assert fields["engine.tx.messages"] == 12.0
        assert fields["engine.queue_depth.peak"] == 9.0
        assert fields["scenario.step_wall_s.count"] == 1.0
        assert fields["scenario.step_wall_s.p95"] > 0.0
        assert render_metrics_table({}) .endswith("(no metrics recorded)")


# ---------------------------------------------------------------------------
# Tracer and spans
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_context_records_both_clocks(self):
        tracer = Tracer("main")
        with tracer.span("work", category="c", track="t", sim_start=5.0) as span:
            span.arg("k", 1)
            span.finish_sim(7.5)
        assert len(tracer) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "work" and recorded.args == {"k": 1}
        assert recorded.wall_dur >= 0.0
        assert recorded.sim_start == 5.0 and recorded.sim_dur == 2.5

    def test_span_serialization_round_trip(self):
        span = Span("x", category="c", process="p", track="t",
                    wall_start=1.0, wall_dur=0.5, sim_start=2.0, sim_dur=0.25,
                    phase="span", args={"n": 3})
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer("main", max_spans=2)
        for index in range(5):
            tracer.complete(f"s{index}", wall_start=0.0, wall_dur=0.0)
        assert len(tracer) == 2 and tracer.dropped == 3

    def test_adopt_rebases_wall_clock_and_process(self):
        worker = Tracer("cell")
        worker.complete("inner", wall_start=0.25, wall_dur=0.5, sim_start=1.0)
        controller = Tracer("controller")
        adopted = controller.adopt(
            [span.to_dict() for span in worker.spans],
            process="worker-1",
            wall_offset=10.0,
        )
        assert adopted == 1
        span = controller.spans[0]
        assert span.process == "worker-1"
        assert span.wall_start == pytest.approx(10.25)
        assert span.sim_start == 1.0  # the sim clock never shifts
        # Malformed payloads are dropped, never fatal.
        assert controller.adopt([{"wall_start_s": "junk"}]) == 0

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        tracer = Tracer("controller")
        tracer.complete("a", wall_start=0.0, wall_dur=0.001, sim_start=0.0,
                        sim_dur=2.0, track="kernel")
        tracer.complete("b", wall_start=0.001, wall_dur=0.002,
                        track="party-0", process="worker-1")
        tracer.instant("mark", track="kernel", sim_time=1.0)
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in metadata}
        assert ("process_name", "controller") in names
        assert ("process_name", "worker-1") in names
        assert ("thread_name", "kernel") in names
        durations = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in durations)
        assert any(e["args"].get("sim_dur_s") == 2.0 for e in durations)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)
        # Distinct (pid, tid) per (process, track); the instant shares the
        # controller/kernel track with span "a".
        keys = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
        assert len(keys) == 2

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer("main")
        tracer.complete("a", wall_start=0.0, wall_dur=0.5)
        path = tmp_path / "trace.jsonl"
        tracer.export(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["name"] == "a"
        assert lines[-1] == {"meta": {"spans": 1, "dropped": 0}}


# ---------------------------------------------------------------------------
# Sessions and the zero-overhead contract
# ---------------------------------------------------------------------------

class TestSessions:
    def test_disabled_helpers_are_noops(self):
        assert telemetry.active_tracer() is None
        assert telemetry.active_metrics() is None
        telemetry.count("x")
        telemetry.observe("y", 1.0)
        telemetry.set_gauge("z", 2.0)
        telemetry.gauge_max("z", 3.0)
        with telemetry.span("nothing") as span:
            assert span is None

    def test_session_installs_and_restores(self):
        with telemetry.telemetry_session(trace=True, metrics=True) as outer:
            assert telemetry.active_tracer() is outer.tracer
            assert telemetry.active_metrics() is outer.metrics
            with telemetry.telemetry_session(metrics=True) as inner:
                # Nested: the inner pair wins, tracer side now off.
                assert telemetry.active_tracer() is None
                assert telemetry.active_metrics() is inner.metrics
            assert telemetry.active_tracer() is outer.tracer
            assert telemetry.active_metrics() is outer.metrics
        assert telemetry.active_tracer() is None
        assert telemetry.active_metrics() is None

    def test_both_off_is_a_pure_noop_session(self):
        with telemetry.telemetry_session() as session:
            assert session.tracer is None and session.metrics is None
            assert session.metrics_snapshot() == {}


# ---------------------------------------------------------------------------
# Engine integration: spans, ordering, counters — and bit-identity
# ---------------------------------------------------------------------------

class TestEngineIntegration:
    def test_golden_workload_is_bit_identical_with_telemetry_on(self):
        """One golden-fixture workload re-run under an active session.

        The full suite (``test_engine_equivalence.py``) pins all nine flat
        protocols with telemetry *off*; this asserts the observation-only
        contract by re-running the proposed protocol's lossless and lossy
        workloads with tracing and metrics installed and comparing against
        the very same frozen capture.
        """
        from equivalence_workloads import FIXTURE_RELPATH, _lossless_run, _lossy_run

        fixture_path = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), FIXTURE_RELPATH
        )
        with open(fixture_path, encoding="utf-8") as handle:
            golden = json.load(handle)["proposed-gka"]
        with telemetry.telemetry_session(trace=True, metrics=True) as session:
            current = json.loads(json.dumps({
                "lossless": _lossless_run("proposed-gka"),
                "lossy": _lossy_run("proposed-gka"),
            }))
        assert current["lossless"] == golden["lossless"]
        assert current["lossy"] == golden["lossy"]
        # And the session actually observed the runs.
        assert session.tracer.count("engine") >= 2
        assert session.metrics.snapshot()["counters"]["engine.runs"] == 2

    def test_scenario_identical_with_and_without_telemetry(self, setup_256):
        scenario = Scenario(
            name="tele-eq",
            initial_size=5,
            seed=11,
            loss_probability=0.1,
            schedule=PoissonChurn(length=3, join_rate=1.0, leave_rate=1.0),
        )
        runner = ScenarioRunner(
            setup_256, engine=build_engine("radio"), check_agreement=False
        )
        plain = runner.run("proposed-gka", scenario)
        with telemetry.telemetry_session(trace=True, metrics=True):
            traced = runner.run("proposed-gka", scenario)
        assert traced.key_fingerprint == plain.key_fingerprint
        assert [r.bits for r in traced.records] == [r.bits for r in plain.records]
        assert [r.energy_j for r in traced.records] == [
            r.energy_j for r in plain.records
        ]

    def test_span_nesting_and_ordering_under_kernel_batches(self, setup_256):
        scenario = Scenario(name="tele-spans", initial_size=4, seed=5)
        runner = ScenarioRunner(
            setup_256, engine=build_engine("radio"), check_agreement=False
        )
        with telemetry.telemetry_session(trace=True) as session:
            report = runner.run("proposed-gka", scenario)
        spans = session.tracer.spans
        batches = [s for s in spans if s.name == "kernel.batch"]
        assert batches, "kernel batches were not traced"
        # Batch spans are recorded in execution order: sim time never rewinds
        # within the run, and every batch closes at-or-after it opened.
        sim_starts = [s.sim_start for s in batches]
        assert sim_starts == sorted(sim_starts)
        assert all(s.sim_dur >= 0.0 for s in batches)
        assert all(s.args["size"] >= 1 for s in batches)
        # Party spans land on per-party tracks nested inside the engine run.
        engine_runs = [s for s in spans if s.name == "engine.run"]
        assert len(engine_runs) == 1
        party_tracks = {s.track for s in spans if s.category == "party"}
        assert len(party_tracks) == 4
        run = engine_runs[0]
        for span in spans:
            if span.category == "party":
                assert run.wall_start <= span.wall_start
                assert span.wall_start + span.wall_dur <= (
                    run.wall_start + run.wall_dur + 1e-6
                )
        # The scenario span encloses everything and counted its steps.
        scenario_spans = [s for s in spans if s.category == "scenario"]
        assert len(scenario_spans) == 1
        assert scenario_spans[0].args["steps"] == len(report.records)

    def test_engine_counters_match_report(self, setup_256):
        scenario = Scenario(name="tele-count", initial_size=5, seed=9)
        runner = ScenarioRunner(
            setup_256, engine=build_engine("radio"), check_agreement=False
        )
        with telemetry.telemetry_session(metrics=True) as session:
            report = runner.run("proposed-gka", scenario)
        counters = session.metrics.snapshot()["counters"]
        assert counters["engine.tx.messages"] == report.total_messages
        assert counters["engine.tx.bits"] == report.total_bits()
        assert counters["scenario.steps"] == len(report.records)
        assert counters["crypto.modexp"] > 0


# ---------------------------------------------------------------------------
# Cache metrics
# ---------------------------------------------------------------------------

class TestCacheMetrics:
    def test_hits_misses_and_prune_counted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"campaign": "c", "cell": "0", "axes": {}}
        with telemetry.telemetry_session(metrics=True) as session:
            assert cache.get(payload) is None
            cache.put(payload, {"campaign": "c", "cell": "0", "x": 1})
            assert cache.get(payload)["x"] == 1
            assert cache.prune(max_entries=0) == 1
        counters = session.metrics.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.puts"] == 1
        assert counters["cache.pruned"] == 1
        line = cache.summary_line()
        assert "1 hits" in line and "1 misses" in line and "50% hit rate" in line

    def test_campaign_rerun_replays_from_cache_under_metrics(self, tmp_path):
        spec = CampaignSpec(
            name="cache-metrics",
            protocols=("proposed-gka",),
            group_sizes=(4,),
            losses=(0.0,),
            seed=23,
        )
        with telemetry.telemetry_session(metrics=True) as session:
            first = run_campaign(spec, cache_dir=str(tmp_path))
            second = run_campaign(spec, cache_dir=str(tmp_path))
        assert first.cache_hits == 0 and second.cache_hits == 1
        counters = session.metrics.snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] >= 1
        assert counters["campaign.cells"] == 1  # the second run computed nothing


# ---------------------------------------------------------------------------
# Fleet integration
# ---------------------------------------------------------------------------

class TestFleetTelemetry:
    def test_fleet_run_with_telemetry_is_bit_identical(self):
        spec = CampaignSpec(
            name="fleet-tele",
            protocols=("proposed-gka", "bd-unauthenticated"),
            group_sizes=(4,),
            losses=(0.0,),
            seed=31,
        )
        serial = run_campaign(spec, workers=1)
        snapshots = []
        with telemetry.telemetry_session(
            trace=True, metrics=True, process="controller"
        ) as session:
            fleet = run_fleet_campaign(
                spec, workers=2, on_progress=snapshots.append
            )
        assert fleet.deterministic_rows() == serial.deterministic_rows()

        # Workers appear as trace *processes*; their cell spans were adopted
        # with the engine/party detail intact.
        processes = session.tracer.processes()
        assert "controller" in processes and len(processes) >= 2
        categories = {s.category for s in session.tracer.spans}
        assert {"fleet", "dispatch", "cell", "engine", "party"} <= categories
        dispatch = [s for s in session.tracer.spans if s.category == "dispatch"]
        assert len(dispatch) == 2  # one per work unit
        # Worker cell spans carry the virtual sim clock too.
        assert any(
            s.sim_start is not None
            for s in session.tracer.spans
            if s.process != "controller"
        )

        # Metrics merged fleet-wide and per worker on the final snapshot.
        final = snapshots[-1]
        assert final.complete
        assert final.metrics["counters"]["engine.runs"] == 2
        assert final.worker_metrics
        merged = merge_snapshots(final.worker_metrics.values())
        assert merged["counters"]["campaign.cells"] == 2
        assert json.loads(json.dumps(final.to_dict())) == final.to_dict()

    def test_fleet_without_telemetry_ships_no_extras(self):
        spec = CampaignSpec(
            name="fleet-quiet",
            protocols=("proposed-gka",),
            group_sizes=(4,),
            losses=(0.0,),
            seed=37,
        )
        snapshots = []
        fleet = run_fleet_campaign(spec, workers=1, on_progress=snapshots.append)
        assert len(fleet.rows) == 1
        final = snapshots[-1]
        assert final.metrics == {} and final.worker_metrics == {}


# ---------------------------------------------------------------------------
# The fleet CLI observability surface (real subprocesses, real sockets)
# ---------------------------------------------------------------------------

class TestFleetCliObservability:
    @staticmethod
    def _env():
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_trace_metrics_and_progress_stream(self, tmp_path):
        spec = {
            "name": "cli-tele",
            "protocols": ["proposed-gka", "bd-unauthenticated"],
            "group_sizes": [4],
            "losses": [0.0],
            "seed": 41,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out_path = tmp_path / "result.json"
        trace_path = tmp_path / "trace.json"
        progress_path = tmp_path / "progress.jsonl"

        # --progress-every is huge so throttled lines never fire: the final
        # 100% line must print anyway, exactly once.
        controller = subprocess.Popen(
            [sys.executable, "-m", "repro.fleet", "controller",
             "--spec", str(spec_path), "--host", "127.0.0.1", "--port", "0",
             "--json", str(out_path), "--quiet",
             "--trace", str(trace_path), "--metrics",
             "--progress-json", str(progress_path), "--progress-every", "3600"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=self._env(),
        )
        workers: List[subprocess.Popen] = []
        try:
            port = None
            assert controller.stdout is not None
            for line in controller.stdout:
                if line.startswith("listening on "):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port, "controller never announced its port"
            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.fleet", "worker",
                     "--connect", f"127.0.0.1:{port}", "--name", f"tele-w{i}"],
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                    env=self._env(),
                )
                for i in range(2)
            ]
            assert controller.wait(timeout=120) == 0
            stderr = controller.stderr.read() if controller.stderr else ""
            for worker in workers:
                assert worker.wait(timeout=30) == 0
        finally:
            for process in [controller, *workers]:
                if process.poll() is None:
                    process.kill()

        # The final 100% progress line printed exactly once despite the
        # throttle, and the metrics table followed it.
        final_lines = [
            line for line in stderr.splitlines()
            if line.startswith("fleet: 2/2 cells")
        ]
        assert len(final_lines) == 1
        assert "engine.runs" in stderr and "--- metrics ---" in stderr
        assert "spans" in stderr and str(trace_path) in stderr

        # Every snapshot streamed as JSONL; the last one is complete and
        # carries the fleet-wide plus per-worker metric views.
        snapshots = [
            json.loads(line) for line in progress_path.read_text().splitlines()
        ]
        assert snapshots and snapshots[-1]["complete"] is True
        assert snapshots[-1]["done"] == 2
        assert snapshots[-1]["metrics"]["counters"]["engine.runs"] == 2
        assert snapshots[-1]["worker_metrics"]
        assert all(not s["complete"] for s in snapshots[:-1])

        # The trace is a Perfetto-loadable Chrome trace: controller plus both
        # workers as processes, dual clocks on the worker engine spans.
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        process_names = {
            e["args"]["name"] for e in events if e.get("name") == "process_name"
        }
        assert "controller" in process_names
        assert {"tele-w0", "tele-w1"} & process_names
        assert any(
            e.get("ph") == "X" and "sim_dur_s" in e.get("args", {})
            for e in events
        )
        categories = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"dispatch", "cell", "engine"} <= categories

        # And observability never bent the rows: bit-identical to serial.
        from repro.campaign import NONDETERMINISTIC_FIELDS

        document = json.loads(out_path.read_text())
        serial = run_campaign(CampaignSpec.from_dict(spec), workers=1)
        fleet_rows = [
            {k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS}
            for row in document["rows"]
        ]
        assert fleet_rows == serial.deterministic_rows()
