"""Tests for the simulated network: messages, medium, nodes, topology, events."""

from __future__ import annotations

import pytest

from repro.energy import DeviceProfile
from repro.exceptions import MembershipError, NetworkError, ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.network import (
    BroadcastMedium,
    EventTraceGenerator,
    JoinEvent,
    LeaveEvent,
    MergeEvent,
    Message,
    MessagePart,
    Node,
    PartitionEvent,
    RingTopology,
    group_element_part,
    identity_part,
)
from repro.pki import Identity


def _message(sender: Identity, label: str = "round1", bits: int = 1000) -> Message:
    return Message.broadcast(sender, label, [MessagePart("payload", b"x", bits)])


class TestMessage:
    def test_wire_bits_sums_parts(self):
        sender = Identity("a")
        message = Message.broadcast(
            sender,
            "round1",
            [identity_part(sender), group_element_part("z", 5, 1024), MessagePart("sig", b"s", 320)],
        )
        assert message.wire_bits == 32 + 1024 + 320

    def test_part_access(self):
        sender = Identity("a")
        message = Message.broadcast(sender, "r", [group_element_part("z", 7, 128)])
        assert message.value("z") == 7
        assert message.has_part("z") and not message.has_part("w")
        assert message.part_names() == ["z"]
        with pytest.raises(ParameterError):
            message.part("missing")

    def test_duplicate_part_names_rejected(self):
        sender = Identity("a")
        with pytest.raises(ParameterError):
            Message.broadcast(sender, "r", [MessagePart("x", 1, 8), MessagePart("x", 2, 8)])

    def test_negative_part_size_rejected(self):
        with pytest.raises(ParameterError):
            MessagePart("x", 1, -8)

    def test_addressing(self):
        a, b, c = Identity("a"), Identity("b"), Identity("c")
        broadcast = _message(a)
        assert broadcast.is_broadcast
        assert broadcast.addressed_to(b) and broadcast.addressed_to(c)
        assert not broadcast.addressed_to(a)
        unicast = Message.unicast(a, b, "r", [MessagePart("x", 1, 8)])
        assert unicast.addressed_to(b) and not unicast.addressed_to(c)


class TestBroadcastMedium:
    def test_broadcast_charges_sender_and_receivers(self):
        medium = BroadcastMedium()
        nodes = [Node(Identity(f"n{i}")) for i in range(4)]
        for node in nodes:
            medium.attach(node)
        message = _message(nodes[0].identity, bits=500)
        receipt = medium.send(message)
        assert receipt.attempts == 1
        assert len(receipt.delivered_to) == 3
        assert nodes[0].recorder.tx_bits == 500
        assert nodes[0].recorder.rx_bits == 0
        for node in nodes[1:]:
            assert node.recorder.rx_bits == 500
            assert node.peek_inbox() == [message]

    def test_unicast_only_reaches_recipient(self):
        medium = BroadcastMedium()
        a, b, c = (Node(Identity(x)) for x in "abc")
        for node in (a, b, c):
            medium.attach(node)
        message = Message.unicast(a.identity, b.identity, "r", [MessagePart("x", 1, 100)])
        medium.send(message)
        assert b.recorder.rx_bits == 100
        assert c.recorder.rx_bits == 0

    def test_unknown_sender_raises(self):
        medium = BroadcastMedium()
        with pytest.raises(NetworkError):
            medium.send(_message(Identity("ghost")))

    def test_detach_stops_delivery(self):
        medium = BroadcastMedium()
        a, b = Node(Identity("a")), Node(Identity("b"))
        medium.attach(a)
        medium.attach(b)
        medium.detach(b.identity)
        medium.send(_message(a.identity))
        assert b.recorder.rx_bits == 0
        assert b.identity not in medium
        assert len(medium) == 1

    def test_lossy_medium_retransmits(self):
        medium = BroadcastMedium(loss_probability=0.5, rng=DeterministicRNG("loss"))
        a, b = Node(Identity("a")), Node(Identity("b"))
        medium.attach(a)
        medium.attach(b)
        receipts = [medium.send(_message(a.identity, bits=10)) for _ in range(50)]
        attempts = [r.attempts for r in receipts]
        assert max(attempts) > 1  # some losses occurred
        assert a.recorder.tx_bits == 10 * sum(attempts)

    def test_excessive_loss_raises(self):
        medium = BroadcastMedium(loss_probability=0.99, max_retries=2, rng=DeterministicRNG("bad"))
        a = Node(Identity("a"))
        medium.attach(a)
        with pytest.raises(NetworkError):
            for _ in range(50):
                medium.send(_message(a.identity))

    def test_invalid_loss_probability(self):
        with pytest.raises(NetworkError):
            BroadcastMedium(loss_probability=1.5)

    def test_transcript_queries(self):
        medium = BroadcastMedium()
        a, b = Node(Identity("a")), Node(Identity("b"))
        medium.attach(a)
        medium.attach(b)
        medium.send(_message(a.identity, "round1", 10))
        medium.send(_message(b.identity, "round2", 20))
        assert medium.total_messages() == 2
        assert medium.total_bits() == 30
        assert len(medium.messages_for_round("round1")) == 1


class TestNode:
    def test_inbox_draining_by_round(self):
        node = Node(Identity("n"))
        node.deliver(_message(Identity("a"), "round1"))
        node.deliver(_message(Identity("b"), "round2"))
        assert len(node.peek_inbox("round1")) == 1
        taken = node.drain_inbox("round1")
        assert len(taken) == 1
        assert len(node.inbox) == 1
        assert len(node.drain_inbox()) == 1
        assert node.inbox == []

    def test_energy_requires_profile(self):
        node = Node(Identity("n"))
        with pytest.raises(NetworkError):
            node.energy()
        node.recorder.record_tx(1000)
        breakdown = node.energy(DeviceProfile())
        assert breakdown.tx_j > 0

    def test_reset_costs(self):
        node = Node(Identity("n"))
        node.recorder.record_tx(100)
        node.reset_costs()
        assert node.recorder.tx_bits == 0


class TestRingTopology:
    def test_basic_structure(self, members):
        ring = RingTopology(members)
        assert ring.size == len(members)
        assert ring.controller() == members[0]
        assert ring.last() == members[-1]
        assert ring.index_of(members[2]) == 3
        assert ring.member_at(1) == members[0]
        assert ring.member_at(len(members) + 1) == members[0]  # wrap-around

    def test_neighbours_wrap(self, members):
        ring = RingTopology(members)
        assert ring.left_neighbour(members[0]) == members[-1]
        assert ring.right_neighbour(members[-1]) == members[0]
        assert ring.right_neighbour(members[2]) == members[3]

    def test_odd_even_indexed(self, members):
        ring = RingTopology(members)
        odd = ring.odd_indexed()
        even = ring.even_indexed()
        assert members[0] in odd and members[1] in even
        assert len(odd) + len(even) == len(members)
        assert members[2] not in ring.odd_indexed(exclude=[members[2]])

    def test_join_leave_partition_merge(self, members):
        ring = RingTopology(members)
        newcomer = Identity("newcomer")
        joined = ring.with_join(newcomer)
        assert joined.size == ring.size + 1 and joined.last() == newcomer
        left = joined.with_leave(members[3])
        assert members[3] not in left
        partitioned = left.with_partition([members[1], members[4]])
        assert partitioned.size == left.size - 2
        other = RingTopology([Identity("x1"), Identity("x2")])
        merged = partitioned.merged_with(other)
        assert merged.size == partitioned.size + 2

    def test_error_cases(self, members):
        ring = RingTopology(members)
        with pytest.raises(ParameterError):
            RingTopology(members[:1])
        with pytest.raises(ParameterError):
            RingTopology(members + [members[0]])
        with pytest.raises(MembershipError):
            ring.with_join(members[0])
        with pytest.raises(MembershipError):
            ring.with_leave(Identity("ghost"))
        with pytest.raises(MembershipError):
            ring.with_partition([Identity("ghost")])
        with pytest.raises(MembershipError):
            ring.with_partition(members[1:])  # would leave fewer than 2 members
        with pytest.raises(MembershipError):
            ring.merged_with(RingTopology(members[:2]))
        with pytest.raises(MembershipError):
            ring.index_of(Identity("ghost"))


class TestEventTraces:
    def test_trace_is_deterministic(self, members):
        gen_a = EventTraceGenerator(DeterministicRNG("trace"))
        gen_b = EventTraceGenerator(DeterministicRNG("trace"))
        trace_a = gen_a.trace(members, 20)
        trace_b = gen_b.trace(members, 20)
        assert [type(e).__name__ for e in trace_a] == [type(e).__name__ for e in trace_b]

    def test_trace_respects_minimum_group_size(self, members):
        generator = EventTraceGenerator(
            DeterministicRNG("shrink"), join_weight=0.0, leave_weight=10.0, merge_weight=0.0, partition_weight=5.0
        )
        current = list(members)
        for event in generator.trace(members, 30, min_group_size=3):
            if isinstance(event, LeaveEvent):
                current = [m for m in current if m.name != event.leaving.name]
            elif isinstance(event, PartitionEvent):
                gone = {i.name for i in event.leaving}
                current = [m for m in current if m.name not in gone]
            elif isinstance(event, JoinEvent):
                current.append(event.joining)
            elif isinstance(event, MergeEvent):
                current.extend(event.other_group)
            assert len(current) >= 3

    def test_controller_never_evicted(self, members):
        generator = EventTraceGenerator(DeterministicRNG("ctrl"), join_weight=1, leave_weight=10)
        for event in generator.trace(members, 40):
            if isinstance(event, LeaveEvent):
                assert event.leaving.name != members[0].name
            if isinstance(event, PartitionEvent):
                assert members[0].name not in {i.name for i in event.leaving}

    def test_event_mix(self, members):
        generator = EventTraceGenerator(DeterministicRNG("mix"), merge_weight=5, partition_weight=5)
        kinds = {type(e).__name__ for e in generator.trace(members, 60)}
        assert {"JoinEvent", "LeaveEvent"} <= kinds
        assert "MergeEvent" in kinds or "PartitionEvent" in kinds

    def test_invalid_weights(self):
        with pytest.raises(ParameterError):
            EventTraceGenerator(DeterministicRNG(0), join_weight=-1)
        with pytest.raises(ParameterError):
            EventTraceGenerator(DeterministicRNG(0), join_weight=0, leave_weight=0, merge_weight=0, partition_weight=0)
        with pytest.raises(ParameterError):
            EventTraceGenerator(DeterministicRNG(0)).trace([], -1)
