"""Tests for wire-format helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SerializationError
from repro.mathutils.serialization import (
    bit_size,
    byte_size,
    bytes_to_int,
    concat_bits,
    decode_fields,
    encode_fields,
    i2osp,
    int_to_bytes,
    os2ip,
)


class TestIntBytes:
    def test_minimal_encoding(self):
        assert int_to_bytes(0) == b"\x00"
        assert int_to_bytes(255) == b"\xff"
        assert int_to_bytes(256) == b"\x01\x00"

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
        assert i2osp(65535, 4) == b"\x00\x00\xff\xff"

    def test_too_small_length_raises(self):
        with pytest.raises(SerializationError):
            int_to_bytes(256, 1)

    def test_negative_raises(self):
        with pytest.raises(SerializationError):
            int_to_bytes(-1)

    def test_roundtrip(self):
        for value in (0, 1, 255, 256, 2**128 - 1, 12345678901234567890):
            assert bytes_to_int(int_to_bytes(value)) == value
            assert os2ip(i2osp(value, 32)) == value

    @given(st.integers(min_value=0, max_value=2**512))
    def test_roundtrip_property(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value


class TestSizes:
    def test_bit_size_int(self):
        assert bit_size(0) == 1
        assert bit_size(1) == 1
        assert bit_size(255) == 8
        assert bit_size(256) == 9

    def test_bit_size_bytes(self):
        assert bit_size(b"abc") == 24

    def test_bit_size_negative_raises(self):
        with pytest.raises(SerializationError):
            bit_size(-3)

    def test_byte_size(self):
        assert byte_size(255) == 1
        assert byte_size(256) == 2
        assert byte_size(b"abcd") == 4

    def test_concat_bits(self):
        assert concat_bits([8, 16, 32]) == 56
        assert concat_bits([]) == 0


class TestFieldEncoding:
    def test_roundtrip(self):
        fields = [b"", b"hello", b"\x00" * 100, bytes(range(256))]
        assert decode_fields(encode_fields(fields)) == fields

    def test_empty_record(self):
        assert decode_fields(encode_fields([])) == []

    def test_unambiguous_concatenation(self):
        # a||bc and ab||c must encode differently (the reason we never hash
        # naive concatenations).
        assert encode_fields([b"a", b"bc"]) != encode_fields([b"ab", b"c"])

    def test_truncated_record_raises(self):
        blob = encode_fields([b"hello"])
        with pytest.raises(SerializationError):
            decode_fields(blob[:-1])
        with pytest.raises(SerializationError):
            decode_fields(blob[:3])
        with pytest.raises(SerializationError):
            decode_fields(b"")

    def test_trailing_bytes_raise(self):
        blob = encode_fields([b"x"]) + b"junk"
        with pytest.raises(SerializationError):
            decode_fields(blob)

    @given(st.lists(st.binary(max_size=200), max_size=10))
    def test_roundtrip_property(self, fields):
        assert decode_fields(encode_fields(fields)) == fields
