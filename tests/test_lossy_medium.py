"""The lossy-medium path: retransmission charging, retry exhaustion, determinism.

The paper appeals to retransmission on failure; these tests pin down what the
simulated medium charges for it and that every loss draw is reproducible.
"""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.mathutils.rand import DeterministicRNG
from repro.network.medium import BroadcastMedium, UniformLink
from repro.network.message import Message, MessagePart
from repro.network.node import Node
from repro.pki import Identity


def _make_message(sender: Identity, bits: int = 800, label: str = "r1") -> Message:
    return Message.broadcast(sender, label, [MessagePart("payload", b"x", bits)])


def _run_lossy(seed: object, sends: int = 20, loss: float = 0.4):
    """A fixed lossy workload; returns (medium, sender node, receiver node)."""
    medium = BroadcastMedium(
        loss_probability=loss, max_retries=50, rng=DeterministicRNG(seed, label="loss")
    )
    alice, bob = Identity("alice"), Identity("bob")
    sender, receiver = Node(alice), Node(bob)
    medium.attach(sender)
    medium.attach(receiver)
    for index in range(sends):
        medium.send(_make_message(alice, bits=800 + index))
    return medium, sender, receiver


class TestRetransmissionCharging:
    def test_sender_and_receiver_pay_for_every_attempt(self):
        medium, sender, receiver = _run_lossy(seed="charge")
        attempts = [receipt.attempts for receipt in medium.receipts]
        assert max(attempts) > 1  # the seed produces at least one retry
        expected = sum(r.message.wire_bits * r.attempts for r in medium.receipts)
        assert sender.recorder.tx_bits == expected
        assert receiver.recorder.rx_bits == expected
        assert sender.recorder.messages_sent == sum(attempts)
        assert receiver.recorder.messages_received == sum(attempts)

    def test_total_bits_with_and_without_retries(self):
        medium, _, _ = _run_lossy(seed="bits")
        once = sum(m.wire_bits for m in medium.transcript)
        assert medium.total_bits() == once
        with_retries = medium.total_bits(include_retries=True)
        assert with_retries == sum(r.message.wire_bits * r.attempts for r in medium.receipts)
        assert with_retries > once

    def test_lossless_medium_retry_count_is_identity(self):
        medium = BroadcastMedium()
        alice = Identity("alice")
        medium.attach(Node(alice))
        medium.attach(Node(Identity("bob")))
        for _ in range(5):
            medium.send(_make_message(alice))
        assert medium.total_bits(include_retries=True) == medium.total_bits()
        assert all(r.attempts == 1 for r in medium.receipts)


class TestRetryExhaustion:
    def test_max_retries_exhaustion_raises_network_error(self):
        # loss=0.99: the first max_retries+1 attempts are lost with
        # overwhelming probability under essentially any seed; this seed is
        # pinned so the test is fully deterministic.
        medium = BroadcastMedium(
            loss_probability=0.99, max_retries=3, rng=DeterministicRNG("exhaust", label="loss")
        )
        alice = Identity("alice")
        medium.attach(Node(alice))
        with pytest.raises(NetworkError, match="lost"):
            medium.send(_make_message(alice))

    def test_sender_still_charged_for_failed_attempts(self):
        medium = BroadcastMedium(
            loss_probability=0.99, max_retries=3, rng=DeterministicRNG("exhaust", label="loss")
        )
        alice = Identity("alice")
        sender = medium.attach(Node(alice))
        message = _make_message(alice)
        with pytest.raises(NetworkError):
            medium.send(message)
        # max_retries + 1 transmissions went out before the give-up.
        assert sender.recorder.tx_bits == message.wire_bits * 4
        # Nothing was delivered, so nothing entered the transcript.
        assert medium.total_messages() == 0


class TestLossDeterminism:
    def test_same_seed_same_draws(self):
        first, _, _ = _run_lossy(seed="replay")
        second, _, _ = _run_lossy(seed="replay")
        assert [r.attempts for r in first.receipts] == [r.attempts for r in second.receipts]
        assert first.total_bits(include_retries=True) == second.total_bits(include_retries=True)

    def test_different_seed_different_draws(self):
        first, _, _ = _run_lossy(seed="replay", sends=40)
        second, _, _ = _run_lossy(seed="other", sends=40)
        assert [r.attempts for r in first.receipts] != [r.attempts for r in second.receipts]


class TestLossKnobPrecedence:
    """Who owns the loss knob when both a constructor value and a link model
    are supplied — pinned so the tiered media cannot silently change it."""

    def test_explicit_uniform_link_overrides_constructor_knob(self):
        medium = BroadcastMedium(loss_probability=0.4, link_model=UniformLink(0.1))
        assert medium.loss_probability == pytest.approx(0.1)
        # And the other way: a lossless UniformLink silences the knob.
        quiet = BroadcastMedium(loss_probability=0.4, link_model=UniformLink(0.0))
        assert quiet.loss_probability == 0.0
        alice = Identity("alice")
        quiet.attach(Node(alice))
        quiet.attach(Node(Identity("bob")))
        for _ in range(20):
            quiet.send(_make_message(alice))
        assert all(r.attempts == 1 for r in quiet.receipts)

    def test_non_uniform_model_compounds_with_knob_in_transmit(self):
        # transmit() draws the broadcast-level knob once AND the per-link
        # model once per receiver: with both at work the delivery rate is the
        # product of the two survival probabilities, not either alone.
        from repro.network.tiers import GilbertElliott, GilbertElliottLink

        def delivered(knob, link_loss, sends=600):
            medium = BroadcastMedium(
                loss_probability=knob,
                rng=DeterministicRNG(f"compound/{knob}/{link_loss}", label="medium"),
                link_model=GilbertElliottLink(GilbertElliott.iid(link_loss)),
            )
            alice = Identity("alice")
            medium.attach(Node(alice))
            medium.attach(Node(Identity("bob")))
            count = 0
            for index in range(sends):
                receipt = medium.transmit(_make_message(alice, bits=800 + index))
                count += len(receipt.delivered_to)
            return count / sends

        both = delivered(0.3, 0.3)
        knob_only = delivered(0.3, 0.0)
        link_only = delivered(0.0, 0.3)
        assert knob_only == pytest.approx(0.7, abs=0.07)
        assert link_only == pytest.approx(0.7, abs=0.07)
        assert both == pytest.approx(0.49, abs=0.07)

    def test_certain_loss_is_rejected(self):
        with pytest.raises(NetworkError):
            BroadcastMedium(loss_probability=1.0)
        with pytest.raises(NetworkError):
            UniformLink(1.0)
        with pytest.raises(NetworkError):
            BroadcastMedium(link_model=UniformLink(1.0))
