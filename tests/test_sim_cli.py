"""The ``python -m repro.sim`` CLI: error paths, exit codes, golden exports.

The golden fixtures (``tests/fixtures/sim_cli_comparison.{csv,json}``) pin
the CLI's machine-readable output for a fixed seeded spec — every column
except host wall time, which is stripped on both sides before comparing.
There is deliberately no regeneration switch: a diff here means the
simulation's observable outputs changed, which should be a conscious
decision (re-capture the fixtures by hand and bump
:data:`repro.campaign.cache.CACHE_VERSION` alongside).
"""

from __future__ import annotations

import csv
import io
import json
import os

import pytest

from repro.sim.__main__ import main as sim_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

GOLDEN_SPEC = {
    "name": "golden",
    "initial_size": 5,
    "seed": 42,
    "loss_probability": 0.1,
    "schedule": {"kind": "poisson", "length": 3},
}
GOLDEN_PROTOCOLS = "proposed-gka,bd-unauthenticated,ssn"


def _write_spec(tmp_path, spec) -> str:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def _normalize_csv(text: str) -> str:
    rows = list(csv.DictReader(io.StringIO(text)))
    for row in rows:
        row.pop("wall_seconds", None)
    fields = [name for name in rows[0]] if rows else []
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return out.getvalue()


def _normalize_json(text: str) -> str:
    payload = json.loads(text)
    for proto in payload["protocols"]:
        proto.pop("wall_seconds", None)
    return json.dumps(payload, indent=2, sort_keys=True)


class TestGoldenOutputs:
    def test_csv_export_matches_the_golden_fixture(self, tmp_path):
        csv_path = tmp_path / "cmp.csv"
        code = sim_main(
            [
                _write_spec(tmp_path, GOLDEN_SPEC),
                "--protocols",
                GOLDEN_PROTOCOLS,
                "--csv",
                str(csv_path),
                "--quiet",
            ]
        )
        assert code == 0
        golden = open(os.path.join(FIXTURES, "sim_cli_comparison.csv")).read()
        assert _normalize_csv(csv_path.read_text()) == golden

    def test_json_export_matches_the_golden_fixture(self, tmp_path):
        json_path = tmp_path / "cmp.json"
        code = sim_main(
            [
                _write_spec(tmp_path, GOLDEN_SPEC),
                "--protocols",
                GOLDEN_PROTOCOLS,
                "--json",
                str(json_path),
                "--quiet",
            ]
        )
        assert code == 0
        golden = open(os.path.join(FIXTURES, "sim_cli_comparison.json")).read()
        assert _normalize_json(json_path.read_text()) == golden

    def test_stdin_spec_is_equivalent_to_a_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(GOLDEN_SPEC)))
        code = sim_main(["-", "--protocols", "proposed-gka"])
        assert code == 0
        assert "proposed-gka" in capsys.readouterr().out


class TestListProtocols:
    def test_sim_cli_lists_the_registry(self, capsys):
        assert sim_main(["--list-protocols"]) == 0
        out = capsys.readouterr().out
        from repro.core.registry import available_protocols

        for name in available_protocols():
            assert name in out
        assert "aliases: cluster-bd" in out
        assert "[cluster]" in out

    def test_campaign_cli_lists_the_registry(self, capsys):
        from repro.campaign.__main__ import main as campaign_main

        assert campaign_main(["--list-protocols"]) == 0
        out = capsys.readouterr().out
        assert "cluster-tree[gka]" in out and "proposed-gka" in out

    def test_omitting_the_spec_without_the_flag_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            sim_main([])
        assert excinfo.value.code == 2
        assert "spec is required" in capsys.readouterr().err


class TestErrorPaths:
    def test_missing_spec_file_exits_2(self, capsys):
        assert sim_main(["/no/such/spec.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unparseable_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"name": "x",')
        assert sim_main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_spec_key_exits_2(self, tmp_path, capsys):
        spec = dict(GOLDEN_SPEC, initial_sise=6)
        assert sim_main([_write_spec(tmp_path, spec)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_schedule_kind_exits_2(self, tmp_path, capsys):
        spec = dict(GOLDEN_SPEC, schedule={"kind": "tsunami"})
        assert sim_main([_write_spec(tmp_path, spec)]) == 2
        assert "schedule.kind" in capsys.readouterr().err

    def test_unknown_protocol_name_exits_2(self, tmp_path, capsys):
        code = sim_main(
            [_write_spec(tmp_path, GOLDEN_SPEC), "--protocols", "proposed-gkaa"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown protocol" in err and "did you mean" in err

    def test_unknown_adversary_preset_exits_2(self, tmp_path, capsys):
        code = sim_main([_write_spec(tmp_path, GOLDEN_SPEC), "--adversary", "ddos"])
        assert code == 2
        assert "unknown adversary preset" in capsys.readouterr().err

    def test_schedule_and_mobility_together_exit_2(self, tmp_path, capsys):
        spec = dict(
            GOLDEN_SPEC,
            mobility={"model": "random-waypoint", "tx_range": 150.0, "duration": 10.0},
        )
        del spec["loss_probability"]
        assert sim_main([_write_spec(tmp_path, spec)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_trace_schedule_with_bad_event_kind_exits_2(self, tmp_path, capsys):
        spec = dict(
            GOLDEN_SPEC,
            schedule={"kind": "trace", "events": [{"kind": "explode"}]},
        )
        assert sim_main([_write_spec(tmp_path, spec)]) == 2
        assert "event.kind" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["warp", "fixed:fast"])
    def test_bad_engine_profile_exits_2(self, tmp_path, capsys, engine):
        assert sim_main([_write_spec(tmp_path, GOLDEN_SPEC), "--engine", engine]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceSpecs:
    def test_trace_schedule_runs_end_to_end(self, tmp_path, capsys):
        spec = {
            "name": "trace-cli",
            "initial_size": 5,
            "seed": 5,
            "schedule": {
                "kind": "trace",
                "events": [
                    {"kind": "leave", "member": "member-002"},
                    {"kind": "join", "member": "member-new"},
                    {"kind": "merge", "members": ["extra-1", "extra-2"]},
                ],
            },
        }
        code = sim_main([_write_spec(tmp_path, spec), "--protocols", "proposed-gka"])
        assert code == 0
        assert "proposed-gka" in capsys.readouterr().out
