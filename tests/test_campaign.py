"""The campaign subsystem: grid expansion, sharded execution, determinism.

The headline property this file pins is the one the whole subsystem is built
around: **a campaign's output is bit-identical no matter how it is executed**
— serially, sharded over a process pool, or replayed from the result cache.
``TestDeterminismHarness`` asserts it for a grid covering every registry
protocol (keys via the report fingerprint, energy ledgers, virtual latency,
security verdicts); ``TestFuzzedInvariants`` asserts the structural
invariants (key uniqueness, energy non-negativity, row conservation) over
seeded random specs.
"""

from __future__ import annotations

import csv
import io
import json
import os
import random
import time

import pytest

from repro.campaign import (
    AXIS_NAMES,
    CampaignSpec,
    NONDETERMINISTIC_FIELDS,
    execute_cell,
    payload_hash,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_main
from repro.core.registry import available_protocols
from repro.exceptions import ParameterError

ALL_PROTOCOLS = tuple(available_protocols())


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="unit",
        protocols=("proposed-gka", "bd-unauthenticated"),
        group_sizes=(5,),
        losses=(0.0,),
        schedule={"kind": "poisson", "length": 2},
        seed=11,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


# ---------------------------------------------------------------------------
# Spec expansion
# ---------------------------------------------------------------------------

class TestSpecExpansion:
    def test_cells_are_the_full_cartesian_product_in_grid_order(self):
        spec = small_spec(
            group_sizes=(5, 8),
            losses=(0.0, 0.1),
            adversaries={"none": None, "inject": "inject"},
            replications=2,
        )
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2 * 2 * 2
        assert [cell.index for cell in cells] == list(range(len(cells)))
        # Grid order: protocol outermost, replication innermost.
        assert cells[0].axes["protocol"] == "proposed-gka"
        assert cells[0].axes["rep"] == 0 and cells[1].axes["rep"] == 1
        assert cells[-1].axes["protocol"] == "bd-unauthenticated"

    def test_cell_keys_are_unique_and_name_every_axis(self):
        spec = small_spec(losses=(0.0, 0.1, 0.2), replications=2)
        keys = [cell.key for cell in spec.cells()]
        assert len(set(keys)) == len(keys)
        for key in keys:
            for axis in AXIS_NAMES:
                assert f"{axis}=" in key

    def test_cell_seeds_depend_only_on_master_seed_and_workload(self):
        spec = small_spec(losses=(0.0, 0.1))
        wider = small_spec(losses=(0.0, 0.05, 0.1), protocols=ALL_PROTOCOLS)
        seeds = {cell.key: cell.payload["scenario"]["seed"] for cell in spec.cells()}
        wider_seeds = {
            cell.key: cell.payload["scenario"]["seed"] for cell in wider.cells()
        }
        # Shared grid points keep their seeds when the grid grows...
        for key, seed in seeds.items():
            assert wider_seeds[key] == seed
        # ...and a different master seed reseeds every cell.
        reseeded = {
            cell.key: cell.payload["scenario"]["seed"]
            for cell in small_spec(losses=(0.0, 0.1), seed=12).cells()
        }
        for key, seed in seeds.items():
            assert reseeded[key] != seed

    def test_treatment_axes_share_the_workload_seed_and_scenario_name(self):
        # Protocols, losses, engines and adversaries are *treatments* over
        # one workload: they must replay identical churn/trajectory streams,
        # which requires an identical scenario seed AND name (the RNG label).
        spec = small_spec(
            losses=(0.0, 0.1),
            adversaries={"none": None, "inject": "inject"},
            replications=2,
        )
        by_workload = {}
        for cell in spec.cells():
            workload = CampaignSpec.workload_key(cell.axes)
            scenario = cell.payload["scenario"]
            by_workload.setdefault(workload, set()).add(
                (scenario["seed"], scenario["name"])
            )
        assert len(by_workload) == 2  # rep=0 and rep=1
        for streams in by_workload.values():
            assert len(streams) == 1  # every treatment shares seed + name
        # Different replications are genuinely different workloads.
        assert len({next(iter(s)) for s in by_workload.values()}) == 2

    def test_payloads_are_json_round_trippable(self):
        spec = small_spec(
            mobilities={
                "rwp": {
                    "model": "random-waypoint",
                    "tx_range": 150.0,
                    "duration": 10.0,
                    "edge_loss": 0.1,
                }
            },
            schedule=None,
            losses=(0.05,),
        )
        for cell in spec.cells():
            assert json.loads(json.dumps(cell.payload)) == cell.payload

    def test_loss_axis_becomes_base_loss_floor_on_mobility_cells(self):
        spec = small_spec(
            schedule=None,
            mobilities={
                "rwp": {
                    "model": "random-waypoint",
                    "tx_range": 150.0,
                    "duration": 10.0,
                    "base_loss": 0.02,
                    "edge_loss": 0.1,
                }
            },
            losses=(0.0, 0.05, 0.2),
        )
        by_loss = {
            cell.axes["loss"]: cell.payload["scenario"]["mobility"]
            for cell in spec.cells()
            if cell.axes["protocol"] == "proposed-gka"
        }
        assert by_loss[0.0]["base_loss"] == 0.02 and by_loss[0.0]["edge_loss"] == 0.1
        assert by_loss[0.05]["base_loss"] == 0.05 and by_loss[0.05]["edge_loss"] == 0.1
        assert by_loss[0.2]["base_loss"] == 0.2 and by_loss[0.2]["edge_loss"] == 0.2

    def test_dict_round_trip(self):
        spec = small_spec(adversaries={"none": None, "mitm": "mitm"}, replications=3)
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.cells() == spec.cells()

    def test_dict_round_trip_preserves_bytes_seeds(self):
        # A bytes seed must survive to_dict -> JSON -> from_dict losslessly
        # (a bare hex string would derive entirely different cell seeds).
        spec = small_spec(seed=b"\xab\xcd")
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.seed == spec.seed
        assert rebuilt.cells() == spec.cells()

    def test_validation(self):
        with pytest.raises(ParameterError, match="at least one protocol"):
            small_spec(protocols=())
        with pytest.raises(ParameterError, match="not both"):
            small_spec(
                mobilities={
                    "rwp": {"model": "random-waypoint", "tx_range": 100.0, "duration": 5.0}
                }
            )
        with pytest.raises(ParameterError, match="params"):
            small_spec(params="huge")
        with pytest.raises(ParameterError, match="replications"):
            small_spec(replications=0)
        with pytest.raises(ParameterError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "protocols": ["bd"], "typo": 1})
        with pytest.raises(ParameterError, match="names must be unique"):
            small_spec(adversaries=[("a", None), ("a", "inject")])
        # Bare-name shorthand is an adversary-preset convenience only; a
        # mobility axis entry must be a (name, spec) pair.
        with pytest.raises(ParameterError, match=r"\(name, spec\) pairs"):
            small_spec(schedule=None, mobilities=("random-waypoint",))


# ---------------------------------------------------------------------------
# The determinism harness (tentpole acceptance)
# ---------------------------------------------------------------------------

class TestDeterminismHarness:
    """workers=N output must be bit-identical to workers=1, protocol by protocol."""

    @pytest.fixture(scope="class")
    def grid(self):
        # Every registry protocol, a lossy medium (retry streams exercised)
        # and an adversary column (security verdicts exercised).
        return CampaignSpec(
            name="determinism",
            protocols=ALL_PROTOCOLS,
            group_sizes=(5,),
            losses=(0.05,),
            schedule={"kind": "poisson", "length": 2},
            adversaries={"none": None, "inject": "inject"},
            seed="determinism-harness",
        )

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return run_campaign(grid, workers=1)

    @pytest.fixture(scope="class")
    def parallel(self, grid):
        return run_campaign(grid, workers=2)

    def test_grid_covers_every_registry_protocol(self, serial):
        assert sorted({row["protocol"] for row in serial.rows}) == sorted(ALL_PROTOCOLS)
        assert len(serial.rows) == len(ALL_PROTOCOLS) * 2

    def test_parallel_rows_bit_identical_to_serial(self, serial, parallel):
        assert serial.deterministic_rows() == parallel.deterministic_rows()

    def test_key_chains_pinned(self, serial, parallel):
        # The fingerprint digests the ordered chain of agreed keys; honest
        # cells must have agreed on at least one.
        for row_s, row_p in zip(serial.rows, parallel.rows):
            assert row_s["key_fingerprint"] == row_p["key_fingerprint"]
            if row_s["adversary"] == "none":
                assert row_s["agreed"] and row_s["key_fingerprint"]

    def test_energy_ledgers_pinned_and_non_negative(self, serial, parallel):
        for row_s, row_p in zip(serial.rows, parallel.rows):
            assert row_s["energy_j"] == row_p["energy_j"]
            # An abort at the establishment step leaves no surviving member
            # ledger (zero); every completed step must have cost something.
            if row_s["aborted"]:
                assert row_s["energy_j"] >= 0.0
            else:
                assert row_s["energy_j"] > 0.0

    def test_security_verdicts_pinned(self, serial):
        verdicts = {
            (row["protocol"], row["adversary"]): row["security_verdict"]
            for row in serial.rows
        }
        for protocol in ALL_PROTOCOLS:
            assert verdicts[(protocol, "none")] == "clean"
        # The repository's headline claims, now via the campaign path.
        assert verdicts[("bd-unauthenticated", "inject")] == "broken"
        assert verdicts[("proposed-gka", "inject")] == "detected"

    def test_no_failures_and_every_cell_reported(self, grid, serial):
        assert serial.failures() == []
        assert [row["cell"] for row in serial.rows] == [c.key for c in grid.cells()]

    def test_virtual_latency_pinned_under_engine_models(self):
        # A separate latency-mode grid: sim_latency_s must match bit-for-bit
        # between serial and sharded execution too.
        spec = CampaignSpec(
            name="determinism-latency",
            protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
            group_sizes=(5,),
            losses=(0.1,),
            schedule={"kind": "poisson", "length": 2},
            engines=("fixed:0.01",),
            seed="latency-harness",
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert serial.deterministic_rows() == parallel.deterministic_rows()
        assert all(row["sim_latency_s"] > 0.0 for row in serial.rows)

    def test_rerunning_the_same_spec_is_reproducible(self, grid, serial):
        again = run_campaign(grid, workers=1)
        assert again.deterministic_rows() == serial.deterministic_rows()


# ---------------------------------------------------------------------------
# Randomized invariants (fuzz)
# ---------------------------------------------------------------------------

def _random_spec(fuzz: random.Random, tag: int) -> CampaignSpec:
    schedule_kind = fuzz.choice(["poisson", "bursts", "merges", None])
    if schedule_kind == "poisson":
        schedule = {"kind": "poisson", "length": fuzz.randint(1, 3)}
    elif schedule_kind == "bursts":
        schedule = {"kind": "bursts", "bursts": fuzz.randint(1, 2), "burst_size": 1}
    elif schedule_kind == "merges":
        schedule = {"kind": "merges", "merges": 1, "merge_size": 2}
    else:
        schedule = None
    return CampaignSpec(
        name=f"fuzz-{tag}",
        protocols=tuple(
            fuzz.sample(ALL_PROTOCOLS, fuzz.randint(1, 3)),
        ),
        group_sizes=tuple(fuzz.sample([4, 5, 6, 8], fuzz.randint(1, 2))),
        losses=tuple(fuzz.sample([0.0, 0.05, 0.1], fuzz.randint(1, 2))),
        schedule=schedule,
        adversaries=fuzz.choice([None, ["eavesdrop"], ["inject"]]),
        replications=fuzz.randint(1, 2),
        seed=fuzz.randint(0, 2**32),
    )


class TestFuzzedInvariants:
    @pytest.mark.parametrize("tag", [0, 1, 2])
    def test_invariants_hold_for_seeded_random_specs(self, tag):
        fuzz = random.Random(2026_07_00 + tag)
        spec = _random_spec(fuzz, tag)
        cells = spec.cells()

        # Per-cell key consistency: unique keys, axes reconstructible from
        # them, expansion idempotent.
        keys = [cell.key for cell in cells]
        assert len(set(keys)) == len(keys)
        assert spec.cells() == cells
        for cell in cells:
            parsed = dict(part.split("=", 1) for part in cell.key.split("/"))
            assert parsed["protocol"] == cell.axes["protocol"]
            assert parsed["loss"] == str(cell.axes["loss"])
            workload = CampaignSpec.workload_key(cell.axes)
            assert cell.payload["scenario"]["seed"] == spec.cell_seed(workload)

        result = run_campaign(spec, workers=2 if tag == 0 else 1)

        # Report-row <-> cell-count conservation.
        assert len(result.rows) == len(cells)
        assert [row["cell"] for row in result.rows] == keys
        assert result.failures() == []

        # Non-negative energy ledgers (strictly positive unless an attacked
        # establishment aborted before any member ledger survived).
        for row in result.rows:
            assert row["energy_j"] >= 0.0
            if not row["aborted"]:
                assert row["energy_j"] > 0.0
            assert row["relay_energy_j"] >= 0.0
            assert row["bits"] >= 0 and row["bits_with_retries"] >= row["bits"]


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_second_run_replays_everything(self, tmp_path):
        spec = small_spec()
        cold = run_campaign(spec, cache_dir=str(tmp_path))
        warm = run_campaign(spec, cache_dir=str(tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.deterministic_rows() == cold.deterministic_rows()
        assert all(row["cached"] for row in warm.rows)

    def test_editing_the_spec_recomputes_only_changed_cells(self, tmp_path):
        run_campaign(small_spec(), cache_dir=str(tmp_path))
        edited = small_spec(losses=(0.0, 0.1))  # one new loss level
        rerun = run_campaign(edited, cache_dir=str(tmp_path))
        assert rerun.cache_hits == 2  # the loss=0.0 cells replay
        assert rerun.cache_misses == 2  # only the loss=0.1 cells compute
        # Replayed and fresh rows interleave back into grid order.
        assert [row["cell"] for row in rerun.rows] == [c.key for c in edited.cells()]

    def test_payload_hash_is_key_order_independent(self):
        a = {"x": 1, "nested": {"b": 2, "a": 3}}
        b = {"nested": {"a": 3, "b": 2}, "x": 1}
        assert payload_hash(a) == payload_hash(b)
        assert payload_hash(a) != payload_hash({"x": 2, "nested": {"b": 2, "a": 3}})

    def test_corrupt_cache_entries_recompute(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, cache_dir=str(tmp_path))
        for name in os.listdir(tmp_path):
            (tmp_path / name).write_text("{not json")
        rerun = run_campaign(spec, cache_dir=str(tmp_path))
        assert rerun.cache_misses == 2 and rerun.failures() == []

    def test_error_rows_are_not_cached(self, tmp_path):
        spec = small_spec(protocols=("no-such-protocol",))
        first = run_campaign(spec, cache_dir=str(tmp_path))
        assert len(first.failures()) == 1
        rerun = run_campaign(spec, cache_dir=str(tmp_path))
        assert rerun.cache_hits == 0  # the failure was recomputed, not replayed

    def test_every_corruption_shape_is_a_logged_miss_never_a_crash(self, tmp_path, caplog):
        # The robustness contract: truncated writes, binary garbage, empty
        # files, JSON of the wrong shape and rows missing their identity keys
        # all log a warning and count as a miss — none can crash a campaign.
        from repro.campaign import ResultCache

        cache = ResultCache(str(tmp_path))
        payload = {"campaign": "unit", "cell": "k", "axes": {}}
        cache.put(payload, {"campaign": "unit", "cell": "k", "energy_j": 1.0})
        (entry,) = [name for name in os.listdir(tmp_path) if name.endswith(".json")]
        corruptions = [
            b'{"campaign": "unit", "cell": "tr',  # truncated mid-write
            b"\x00\xff\xfe garbage \x80",  # not UTF-8
            b"",  # empty file
            b"[1, 2, 3]",  # JSON, wrong shape
            b'{"some": "dict", "without": "identity"}',  # dict, missing keys
        ]
        for garbage in corruptions:
            (tmp_path / entry).write_bytes(garbage)
            with caplog.at_level("WARNING", logger="repro.campaign.cache"):
                caplog.clear()
                assert cache.get(payload) is None
            assert any("recomputing" in r.message for r in caplog.records)
        assert cache.hits == 0 and cache.misses == len(corruptions)

        # And end to end: a campaign over a fully corrupted cache recomputes
        # bit-identically, then overwrites the bad entries.
        spec = small_spec()
        baseline = run_campaign(spec, cache_dir=str(tmp_path))
        for name in os.listdir(tmp_path):
            if name.endswith(".json"):
                (tmp_path / name).write_bytes(b"\x00 not a row")
        rerun = run_campaign(spec, cache_dir=str(tmp_path))
        assert rerun.cache_hits == 0 and rerun.failures() == []
        assert rerun.deterministic_rows() == baseline.deterministic_rows()
        healed = run_campaign(spec, cache_dir=str(tmp_path))
        assert healed.cache_hits == 2

    def test_prune_by_age_and_count(self, tmp_path):
        from repro.campaign import ResultCache

        run_campaign(small_spec(losses=(0.0, 0.1, 0.2)), cache_dir=str(tmp_path))
        cache = ResultCache(str(tmp_path))
        assert len(cache) == 6
        # Age out two entries by back-dating their mtimes.
        entries = sorted(os.listdir(tmp_path))
        old = time.time() - 3600
        for name in entries[:2]:
            os.utime(tmp_path / name, (old, old))
        assert cache.prune(max_age_s=60) == 2
        assert len(cache) == 4
        # Then bound the survivors by count (newest kept).
        assert cache.prune(max_entries=1) == 3
        assert len(cache) == 1
        # Idempotent and safe on an already-small cache.
        assert cache.prune(max_age_s=60, max_entries=5) == 0
        # The surviving entry still replays.
        warm = run_campaign(small_spec(losses=(0.0, 0.1, 0.2)), cache_dir=str(tmp_path))
        assert warm.cache_hits == 1 and warm.cache_misses == 5

    def test_prune_ignores_foreign_files(self, tmp_path):
        from repro.campaign import ResultCache

        (tmp_path / "README.txt").write_text("not a cache entry")
        cache = ResultCache(str(tmp_path))
        assert cache.prune(max_age_s=0.0) == 0
        assert (tmp_path / "README.txt").exists()


# ---------------------------------------------------------------------------
# Crash isolation and aggregation
# ---------------------------------------------------------------------------

class TestExecution:
    def test_bad_cells_fail_in_isolation(self):
        spec = small_spec(protocols=("proposed-gka", "no-such-protocol", "ssn"))
        result = run_campaign(spec, workers=2)
        assert len(result.rows) == 3
        failures = result.failures()
        assert len(failures) == 1
        assert failures[0]["protocol"] == "no-such-protocol"
        assert "unknown protocol" in failures[0]["error"]
        assert {row["protocol"] for row in result.ok_rows()} == {"proposed-gka", "ssn"}

    def test_execute_cell_never_raises(self):
        row = execute_cell({"campaign": "x", "cell": "k", "axes": {}, "scenario": {}})
        assert row["error"]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParameterError, match="workers"):
            run_campaign(small_spec(), workers=0)

    def test_groupby_and_pivot(self):
        spec = small_spec(losses=(0.0, 0.1))
        result = run_campaign(spec)
        by_protocol = result.groupby(("protocol",), "energy_j")
        assert set(by_protocol) == {("proposed-gka",), ("bd-unauthenticated",)}
        table = result.pivot("protocol", "loss", "energy_j")
        assert set(table["proposed-gka"]) == {0.0, 0.1}
        rendered = result.pivot_table("protocol", "loss", "energy_j")
        assert "proposed-gka" in rendered and "0.1" in rendered
        with pytest.raises(ParameterError, match="sequence"):
            result.groupby("protocol", "energy_j")

    def test_exports(self, tmp_path):
        result = run_campaign(small_spec())
        csv_path = tmp_path / "rows.csv"
        rows = list(csv.DictReader(io.StringIO(result.to_csv(str(csv_path)))))
        assert [row["protocol"] for row in rows] == ["proposed-gka", "bd-unauthenticated"]
        assert csv_path.exists()
        payload = json.loads(result.to_json(str(tmp_path / "result.json")))
        assert payload["cells"] == 2 and payload["failures"] == 0
        assert payload["spec"]["name"] == "unit"


# ---------------------------------------------------------------------------
# The attack matrix rides the campaign runner
# ---------------------------------------------------------------------------

class TestAttackMatrixParity:
    def test_campaign_path_matches_the_serial_fallback_exactly(self, small_setup):
        # A scenario exercising the fields the campaign cells must pin
        # verbatim (non-default member_prefix, trace schedule, string seed).
        from repro.adversary import AdversaryConfig, run_attack_matrix
        from repro.energy.accounting import DeviceProfile
        from repro.network.events import LeaveEvent
        from repro.pki import Identity
        from repro.sim import Scenario, TraceReplay

        scenario = Scenario(
            name="parity",
            initial_size=5,
            member_prefix="node",
            schedule=TraceReplay(events=(LeaveEvent(leaving=Identity("node-001")),)),
            seed="parity",
        )
        attackers = {"baseline": None, "inject": AdversaryConfig.preset("inject")}
        kwargs = dict(
            protocols=["proposed-gka", "bd-unauthenticated"],
            attackers=attackers,
            scenario=scenario,
        )
        via_campaign = run_attack_matrix(small_setup, workers=2, **kwargs)
        # A non-None device is not spec-serializable and forces the serial
        # in-process loop — the reference behaviour.
        via_serial = run_attack_matrix(small_setup, device=DeviceProfile(), **kwargs)
        assert [
            (o.protocol, o.attacker, o.verdict, o.attacks, o.detail)
            for o in via_campaign.outcomes
        ] == [
            (o.protocol, o.attacker, o.verdict, o.attacks, o.detail)
            for o in via_serial.outcomes
        ]

    def test_non_canonical_setup_falls_back_to_serial(self):
        # Workers rebuild the setup by name, so a setup that is not one of
        # the canonical parameter sets must never be silently substituted.
        from repro.adversary import run_attack_matrix
        from repro.core import SystemSetup

        custom = SystemSetup.from_param_sets("test-256", "gq-test-256", hash_bits=128)
        matrix = run_attack_matrix(
            custom, protocols=["bd-unauthenticated"], attackers={"baseline": None}
        )
        assert matrix.verdict("bd-unauthenticated", "baseline") == "clean"


# ---------------------------------------------------------------------------
# The python -m repro.campaign CLI
# ---------------------------------------------------------------------------

class TestCampaignCli:
    @staticmethod
    def _spec_file(tmp_path, **overrides):
        spec = {
            "name": "cli",
            "protocols": ["proposed-gka", "bd-unauthenticated"],
            "group_sizes": [5],
            "schedule": {"kind": "poisson", "length": 2},
            "seed": 3,
        }
        spec.update(overrides)
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_runs_with_exports_and_pivot(self, tmp_path, capsys):
        csv_path = tmp_path / "rows.csv"
        code = campaign_main(
            [
                self._spec_file(tmp_path),
                "--workers",
                "2",
                "--csv",
                str(csv_path),
                "--json",
                str(tmp_path / "result.json"),
                "--pivot",
                "protocol:loss:energy_j",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign : cli" in out and "energy_j (mean)" in out
        assert csv_path.exists()

    def test_cell_failures_exit_nonzero(self, tmp_path, capsys):
        code = campaign_main(
            [self._spec_file(tmp_path, protocols=["proposed-gka", "nope"]), "--quiet"]
        )
        assert code == 1

    def test_missing_spec_file_exits_2(self, capsys):
        assert campaign_main(["/does/not/exist.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert campaign_main([str(bad)]) == 2
        bad.write_text(json.dumps({"name": "x"}))
        assert campaign_main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_pivot_and_workers_exit_2(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        assert campaign_main([spec, "--pivot", "protocol-loss"]) == 2
        assert campaign_main([spec, "--workers", "0"]) == 2

    def test_dry_run_prints_the_grid_without_running(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path, losses=[0.0, 0.1])
        assert campaign_main([spec, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "campaign : cli — 4 cells" in out
        assert "protocol" in out and "proposed-gka, bd-unauthenticated" in out
        assert "loss" in out and "0.0, 0.1" in out
        assert "pending  : 4 (no cache dir)" in out

    def test_dry_run_reports_the_cached_vs_pending_split(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        spec = self._spec_file(tmp_path)
        assert campaign_main([spec, "--cache-dir", str(cache_dir)]) == 0
        spec = self._spec_file(tmp_path, losses=[0.0, 0.1])
        capsys.readouterr()
        assert campaign_main([spec, "--dry-run", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign : cli — 4 cells" in out
        assert f"cache    : 2 cached, 2 pending ({cache_dir})" in out
        # Nothing ran: the new loss level is still pending afterwards.
        assert len(list(cache_dir.glob("*.json"))) == 2


# ---------------------------------------------------------------------------
# Pre-flight planning (shared by --dry-run and the fleet controller)
# ---------------------------------------------------------------------------

class TestCampaignPlan:
    def test_plan_expands_without_executing(self):
        from repro.campaign import plan_campaign

        spec = small_spec(losses=(0.0, 0.1))
        plan = plan_campaign(spec)
        assert plan.total == 4
        assert plan.axes["protocol"] == ("proposed-gka", "bd-unauthenticated")
        assert plan.axes["loss"] == (0.0, 0.1)
        assert [cell.index for cell in plan.pending] == [0, 1, 2, 3]
        assert plan.cached_rows == {}

    def test_plan_splits_by_cache_state_in_grid_order(self, tmp_path):
        from repro.campaign import plan_campaign

        run_campaign(small_spec(), cache_dir=str(tmp_path))
        edited = small_spec(losses=(0.0, 0.1))
        plan = plan_campaign(edited, cache_dir=str(tmp_path))
        assert set(plan.cached_rows) == {
            cell.index for cell in edited.cells() if cell.axes["loss"] == 0.0
        }
        assert all(cell.axes["loss"] == 0.1 for cell in plan.pending)
        assert all(row["cached"] for row in plan.cached_rows.values())
        description = plan.describe()
        assert "2 cached, 2 pending" in description
