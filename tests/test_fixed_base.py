"""Fixed-base exponentiation and simultaneous multi-exponentiation.

The performance layer must be *invisible* except for speed: every result is
asserted bit-identical to builtin ``pow``-based computation.
"""

from __future__ import annotations

import pytest

from repro.core import SystemSetup
from repro.core.base import compute_bd_key
from repro.exceptions import ParameterError
from repro.groups.schnorr import SchnorrGroup
from repro.mathutils.modular import FixedBaseExp, modinv, multi_exp
from repro.mathutils.rand import DeterministicRNG
from repro.pki import Identity


class TestFixedBaseExp:
    def test_matches_pow_over_random_exponents(self, small_group, rng):
        fixed = FixedBaseExp(small_group.g, small_group.p, small_group.q.bit_length())
        for _ in range(200):
            e = rng.randbelow(small_group.q)
            assert fixed.pow(e) == pow(small_group.g, e, small_group.p)

    def test_edge_exponents(self, small_group):
        fixed = FixedBaseExp(small_group.g, small_group.p, small_group.q.bit_length())
        for e in (0, 1, 2, small_group.q - 1, small_group.q):
            assert fixed.pow(e) == pow(small_group.g, e, small_group.p)

    def test_every_window_width(self, small_group, rng):
        exponents = [rng.randbelow(small_group.q) for _ in range(20)]
        for window in (1, 2, 3, 5, 8):
            fixed = FixedBaseExp(
                small_group.g, small_group.p, small_group.q.bit_length(), window=window
            )
            for e in exponents:
                assert fixed.pow(e) == pow(small_group.g, e, small_group.p)

    def test_oversized_exponent_falls_back_to_pow(self, small_group):
        fixed = FixedBaseExp(small_group.g, small_group.p, 16)
        huge = small_group.q * 12345 + 678
        assert fixed.pow(huge) == pow(small_group.g, huge, small_group.p)

    def test_rejects_negative_exponent_and_bad_parameters(self, small_group):
        fixed = FixedBaseExp(small_group.g, small_group.p, 32)
        with pytest.raises(ParameterError):
            fixed.pow(-1)
        with pytest.raises(ParameterError):
            FixedBaseExp(small_group.g, 0, 32)
        with pytest.raises(ParameterError):
            FixedBaseExp(small_group.g, small_group.p, 0)
        with pytest.raises(ParameterError):
            FixedBaseExp(small_group.g, small_group.p, 32, window=0)

    def test_exp_g_routes_through_cache_and_matches_pow(self, small_group, rng):
        # A fresh, uncached group instance: the table must appear lazily.
        group = SchnorrGroup(p=small_group.p, q=small_group.q, g=small_group.g)
        assert "_fixed_base_tables" not in group.__dict__
        exponents = [rng.randbelow(group.q * 3) for _ in range(50)] + [0, 1, group.q - 1]
        for e in exponents:
            assert group.exp_g(e) == pow(group.g, e, group.p)
        assert "_fixed_base_tables" in group.__dict__

    def test_exp_g_negative_exponent_unchanged(self, small_group, rng):
        group = small_group
        for _ in range(10):
            e = group.random_exponent(rng)
            # The pre-cache semantics: invert the base, exponentiate by -e.
            reference = pow(modinv(group.g, group.p), e, group.p)
            assert group.exp_g(-e) == reference

    def test_initial_gka_exercises_the_fixed_base_table(self):
        # A setup on a *fresh* group object (the named sets are process-cached
        # and may already hold a table built by other tests).
        cached = SystemSetup.from_param_sets("test-256", "gq-test-256")
        group = SchnorrGroup(p=cached.group.p, q=cached.group.q, g=cached.group.g)
        setup = SystemSetup(group=group, pkg=cached.pkg, hash_function=cached.hash_function)
        from repro.core import ProposedGKAProtocol

        result = ProposedGKAProtocol(setup).run(
            [Identity(f"fb-{i}") for i in range(4)], seed=99
        )
        assert result.all_agree()
        assert "_fixed_base_tables" in group.__dict__  # Round 1 built and used it


class TestMultiExp:
    def _reference(self, bases, exponents, modulus):
        acc = 1
        for base, exponent in zip(bases, exponents):
            if exponent < 0:
                base = modinv(base, modulus)
                exponent = -exponent
            acc = (acc * pow(base, exponent, modulus)) % modulus
        return acc

    def test_matches_product_of_pows(self, small_group, rng):
        p = small_group.p
        for size in (1, 2, 3, 7, 20):
            bases = [rng.randbelow(p - 2) + 1 for _ in range(size)]
            exponents = [rng.randbelow(small_group.q) for _ in range(size)]
            assert multi_exp(bases, exponents, p) == self._reference(bases, exponents, p)

    def test_negative_and_zero_exponents(self, small_group, rng):
        p = small_group.p
        bases = [rng.randbelow(p - 2) + 1 for _ in range(4)]
        exponents = [-3, 0, rng.randbelow(small_group.q), -rng.randbelow(small_group.q)]
        assert multi_exp(bases, exponents, p) == self._reference(bases, exponents, p)

    def test_empty_and_all_zero(self, small_group):
        assert multi_exp([], [], small_group.p) == 1
        assert multi_exp([5, 7], [0, 0], small_group.p) == 1

    def test_mismatched_lengths_and_bad_modulus(self):
        with pytest.raises(ParameterError):
            multi_exp([2, 3], [1], 97)
        with pytest.raises(ParameterError):
            multi_exp([2], [1], 0)

    def test_compute_bd_key_identical_to_naive(self, small_group, rng):
        """The multi-exp BD key equals the textbook per-term computation."""
        group = small_group
        n = 6
        names = [f"u{i}" for i in range(n)]
        r = {name: group.random_exponent(rng) for name in names}
        z = {name: group.exp_g(r[name]) for name in names}
        x = {}
        for i, name in enumerate(names):
            right, left = names[(i + 1) % n], names[(i - 1) % n]
            x[name] = group.power(group.div(z[right], z[left]), r[name])
        expected_keys = set()
        for i, name in enumerate(names):
            # Naive reference: one pow per term, multiplied together.
            left = names[(i - 1) % n]
            naive = group.power(z[left], n * r[name])
            for offset in range(n - 1):
                other = names[(i + offset) % n]
                naive = (naive * group.power(x[other], n - 1 - offset)) % group.p
            key = compute_bd_key(group, names, name, r[name], z, x)
            assert key == naive
            expected_keys.add(key)
        assert len(expected_keys) == 1  # everyone agrees
