"""Integration tests for the initial GKA protocols: the proposed scheme and
all baselines (plain BD, BD+SOK/ECDSA/DSA, SSN)."""

from __future__ import annotations

import pytest

from repro.baselines import AuthenticatedBDProtocol, BurmesterDesmedtProtocol, SSNProtocol
from repro.core import ProposedGKAProtocol, SystemSetup, compute_bd_key, compute_bd_x_value, verify_x_product
from repro.exceptions import BatchVerificationError, ParameterError
from repro.network.message import Message, MessagePart
from repro.pki import Identity


def _tamper_s(message: Message, attempt: int) -> Message:
    """Corrupt U-2's Round 2 response on the first attempt only."""
    if attempt == 0 and message.sender.name == "member-02" and message.has_part("s"):
        parts = []
        for part in message.parts:
            if part.name == "s":
                parts.append(MessagePart("s", int(part.value) + 1, part.bits))
            else:
                parts.append(part)
        return Message(sender=message.sender, round_label=message.round_label, parts=tuple(parts))
    return message


class TestProposedGKA:
    @pytest.mark.parametrize("size", [2, 3, 5, 9])
    def test_all_members_agree(self, small_setup, size):
        members = [Identity(f"agree-{size}-{i}") for i in range(size)]
        result = ProposedGKAProtocol(small_setup).run(members, seed=size)
        assert result.all_agree()
        assert result.group_key is not None
        assert result.rounds == 2

    def test_key_is_a_subgroup_element(self, small_setup, members):
        result = ProposedGKAProtocol(small_setup).run(members, seed=1)
        assert small_setup.group.is_subgroup_element(result.group_key)

    def test_key_matches_direct_formula(self, small_setup, members):
        # K = g^{r_1 r_2 + r_2 r_3 + ... + r_n r_1} (paper equation 3)
        result = ProposedGKAProtocol(small_setup).run(members, seed=2)
        group = small_setup.group
        states = [result.state.party(m) for m in result.state.ring.members]
        exponent = sum(
            states[i].r * states[(i + 1) % len(states)].r for i in range(len(states))
        ) % group.q
        assert result.group_key == pow(group.g, exponent, group.p)

    def test_per_member_costs_match_table1(self, small_setup, members):
        result = ProposedGKAProtocol(small_setup).run(members, seed=3)
        n = len(members)
        for name, recorder in result.state.recorders().items():
            assert recorder.operation_count("modexp") == 3
            assert recorder.operation_count("sign_gen_gq") == 1
            assert recorder.operation_count("sign_ver_gq") == 1
            assert recorder.messages_sent == 2
            assert recorder.messages_received == 2 * (n - 1)

    def test_different_seeds_different_keys(self, small_setup, members):
        key_a = ProposedGKAProtocol(small_setup).run(members, seed="a").group_key
        key_b = ProposedGKAProtocol(small_setup).run(members, seed="b").group_key
        assert key_a != key_b

    def test_same_seed_reproducible(self, small_setup, members):
        key_a = ProposedGKAProtocol(small_setup).run(members, seed="same").group_key
        key_b = ProposedGKAProtocol(small_setup).run(members, seed="same").group_key
        assert key_a == key_b

    def test_tampering_triggers_retransmission_and_recovery(self, small_setup, members):
        protocol = ProposedGKAProtocol(small_setup, max_retransmissions=2)
        result = protocol.run(members, seed=4, tamper=_tamper_s)
        assert result.all_agree()
        # A retransmission happened: more than the nominal 2n messages are on the medium.
        assert result.total_messages() > 2 * len(members)

    def test_persistent_tampering_fails_loudly(self, small_setup, members):
        def always_tamper(message: Message, attempt: int) -> Message:
            return _tamper_s(message, 0) if message.has_part("s") else message

        protocol = ProposedGKAProtocol(small_setup, max_retransmissions=1)
        with pytest.raises(BatchVerificationError):
            protocol.run(members, seed=5, tamper=always_tamper)

    def test_too_few_members_rejected(self, small_setup):
        with pytest.raises(ParameterError):
            ProposedGKAProtocol(small_setup).run([Identity("solo")])

    def test_paper_sized_parameters(self, paper_setup):
        members = [Identity(f"paper-{i}") for i in range(4)]
        result = ProposedGKAProtocol(paper_setup).run(members, seed=6)
        assert result.all_agree()
        assert result.group_key.bit_length() <= 1024
        # Round 1 messages are |U| + |p| + |n| = 32 + 1024 + 1024 bits.
        round1 = result.medium.messages_for_round("round1")
        assert all(m.wire_bits == 32 + 1024 + 1024 for m in round1)


class TestBDHelpers:
    def test_lemma1_product_of_x_is_one(self, small_setup, members):
        result = ProposedGKAProtocol(small_setup).run(members, seed=7)
        group = small_setup.group
        states = [result.state.party(m) for m in result.state.ring.members]
        ring = result.state.ring
        x_values = []
        for state in states:
            left = ring.left_neighbour(state.identity)
            right = ring.right_neighbour(state.identity)
            x_values.append(
                compute_bd_x_value(
                    group,
                    result.state.party(right).z,
                    result.state.party(left).z,
                    state.r,
                )
            )
        assert verify_x_product(group, x_values)
        assert not verify_x_product(group, x_values[:-1] + [x_values[-1] * 2 % group.p])

    def test_compute_bd_key_input_validation(self, small_group):
        with pytest.raises(ParameterError):
            compute_bd_key(small_group, ["a"], "a", 1, {}, {})
        with pytest.raises(ParameterError):
            compute_bd_key(small_group, ["a", "b"], "c", 1, {"a": 1, "b": 1}, {"a": 1, "b": 1})


class TestBaselineBD:
    def test_plain_bd_agrees(self, small_setup, members):
        result = BurmesterDesmedtProtocol(small_setup).run(members, seed=1)
        assert result.all_agree()
        for recorder in result.state.recorders().values():
            assert recorder.operation_count("modexp") == 3

    def test_plain_bd_matches_proposed_key_structure(self, small_setup, members):
        bd = BurmesterDesmedtProtocol(small_setup).run(members, seed=2)
        group = small_setup.group
        assert group.is_subgroup_element(bd.group_key)


class TestAuthenticatedBD:
    @pytest.mark.parametrize("scheme", ["ecdsa", "dsa", "sok"])
    def test_agreement_and_costs(self, small_setup, scheme):
        members = [Identity(f"abd-{scheme}-{i}") for i in range(4)]
        protocol = AuthenticatedBDProtocol(small_setup, scheme)
        result = protocol.run(members, seed=1)
        assert result.all_agree()
        n = len(members)
        for recorder in result.state.recorders().values():
            assert recorder.operation_count("modexp") == 3
            assert recorder.operation_count(f"sign_gen_{scheme}") == 1
            expected_verifications = (n - 1) * (2 if scheme in ("ecdsa", "dsa") else 1)
            assert recorder.operation_count(f"sign_ver_{scheme}") == expected_verifications

    def test_certificates_only_for_cert_schemes(self, small_setup):
        assert AuthenticatedBDProtocol(small_setup, "ecdsa").uses_certificates
        assert AuthenticatedBDProtocol(small_setup, "dsa").uses_certificates
        assert not AuthenticatedBDProtocol(small_setup, "sok").uses_certificates

    def test_round1_carries_certificates(self, small_setup):
        members = [Identity(f"cert-{i}") for i in range(3)]
        result = AuthenticatedBDProtocol(small_setup, "ecdsa").run(members, seed=2)
        round1 = result.medium.messages_for_round("authbd-round1")
        assert all(m.has_part("certificate") for m in round1)
        assert all(m.wire_bits > 688 for m in round1)

    def test_unknown_scheme_rejected(self, small_setup):
        with pytest.raises(ParameterError):
            AuthenticatedBDProtocol(small_setup, "rsa")

    def test_reprovisioning_is_stable(self, small_setup):
        members = [Identity(f"stable-{i}") for i in range(3)]
        protocol = AuthenticatedBDProtocol(small_setup, "ecdsa")
        first = protocol.run(members, seed=1)
        second = protocol.run(members, seed=2)
        assert first.all_agree() and second.all_agree()
        assert first.group_key != second.group_key  # fresh ephemeral keys


class TestSSN:
    def test_agreement(self, small_setup):
        members = [Identity(f"ssn-{i}") for i in range(5)]
        result = SSNProtocol(small_setup).run(members, seed=1)
        assert result.all_agree()

    def test_exponentiation_count_is_linear_in_n(self, small_setup):
        for n in (3, 5, 7):
            members = [Identity(f"ssn-lin-{n}-{i}") for i in range(n)]
            result = SSNProtocol(small_setup).run(members, seed=n)
            for recorder in result.state.recorders().values():
                assert recorder.operation_count("modexp") == 2 * n + 3
                assert recorder.operation_count("sign_gen_gq") == 0
                assert recorder.operation_count("sign_ver_gq") == 0

    def test_all_protocols_on_same_members_give_distinct_keys(self, small_setup):
        members = [Identity(f"multi-{i}") for i in range(4)]
        keys = {
            ProposedGKAProtocol(small_setup).run(members, seed=1).group_key,
            BurmesterDesmedtProtocol(small_setup).run(members, seed=1).group_key,
            SSNProtocol(small_setup).run(members, seed=1).group_key,
        }
        assert len(keys) == 3
