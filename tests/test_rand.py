"""Tests for the deterministic RNG."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.mathutils.rand import DeterministicRNG, default_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRNG(42), DeterministicRNG(42)
        assert [a.getrandbits(64) for _ in range(10)] == [b.getrandbits(64) for _ in range(10)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRNG(1), DeterministicRNG(2)
        assert [a.getrandbits(64) for _ in range(4)] != [b.getrandbits(64) for _ in range(4)]

    def test_seed_types(self):
        assert DeterministicRNG(b"abc").getrandbits(32) == DeterministicRNG(b"abc").getrandbits(32)
        assert DeterministicRNG("abc").getrandbits(32) == DeterministicRNG("abc").getrandbits(32)
        with pytest.raises(ParameterError):
            DeterministicRNG(3.14)  # type: ignore[arg-type]

    def test_fork_independent_streams(self):
        parent = DeterministicRNG(5)
        child_a = parent.fork("a")
        child_b = parent.fork("b")
        assert child_a.getrandbits(64) != child_b.getrandbits(64)
        # forking again with the same label reproduces the same stream
        assert parent.fork("a").getrandbits(64) == DeterministicRNG(5).fork("a").getrandbits(64)

    def test_default_rng_helper(self):
        assert default_rng(9).getrandbits(16) == DeterministicRNG(9).getrandbits(16)


class TestRanges:
    def test_getrandbits_bounds(self):
        rng = DeterministicRNG(0)
        for bits in (1, 7, 32, 200):
            for _ in range(20):
                assert 0 <= rng.getrandbits(bits) < 2**bits
        assert rng.getrandbits(0) == 0

    def test_randbelow_bounds(self):
        rng = DeterministicRNG(1)
        for bound in (1, 2, 17, 1000):
            for _ in range(30):
                assert 0 <= rng.randbelow(bound) < bound
        with pytest.raises(ParameterError):
            rng.randbelow(0)

    def test_randint_inclusive(self):
        rng = DeterministicRNG(2)
        values = {rng.randint(3, 5) for _ in range(100)}
        assert values == {3, 4, 5}
        with pytest.raises(ParameterError):
            rng.randint(5, 3)

    def test_exact_bits(self):
        rng = DeterministicRNG(3)
        for bits in (2, 8, 64):
            for _ in range(10):
                v = rng.random_bits_exact(bits)
                assert v.bit_length() == bits
                o = rng.random_odd_bits_exact(bits)
                assert o.bit_length() == bits and o % 2 == 1

    def test_random_bytes(self):
        rng = DeterministicRNG(4)
        assert len(rng.random_bytes(33)) == 33
        assert rng.random_bytes(0) == b""
        with pytest.raises(ParameterError):
            rng.random_bytes(-1)


class TestGroupDraws:
    def test_zq_star_range(self):
        rng = DeterministicRNG(5)
        q = 101
        for _ in range(50):
            v = rng.zq_star(q)
            assert 1 <= v < q
        with pytest.raises(ParameterError):
            rng.zq_star(2)

    def test_zn_star_coprimality(self):
        rng = DeterministicRNG(6)
        n = 3 * 5 * 7 * 11
        for _ in range(50):
            v = rng.zn_star(n)
            assert 1 <= v < n
            assert math.gcd(v, n) == 1


class TestCollections:
    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(7)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely with this seed

    def test_choice_and_sample(self):
        rng = DeterministicRNG(8)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sample = rng.sample(items, 3)
        assert len(sample) == 3 and len(set(sample)) == 3
        assert set(sample) <= set(items)
        with pytest.raises(ParameterError):
            rng.choice([])
        with pytest.raises(ParameterError):
            rng.sample(items, 9)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_randbelow_uniform_support(self, bound):
        rng = DeterministicRNG(bound)
        assert 0 <= rng.randbelow(bound) < bound
