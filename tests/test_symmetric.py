"""Tests for the AES substrate, block modes and the authenticated envelope."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecryptionError, ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.symmetric.aes import AES
from repro.symmetric.authenc import AuthenticatedCiphertext, SymmetricEnvelope, group_key_to_bytes
from repro.symmetric.modes import (
    decrypt_cbc,
    decrypt_ctr,
    encrypt_cbc,
    encrypt_ctr,
    pkcs7_pad,
    pkcs7_unpad,
)


class TestAESBlocks:
    def test_fips197_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected
        assert AES(key).decrypt_block(expected) == plaintext

    def test_fips197_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(plaintext) == expected
        assert AES(key).decrypt_block(expected) == plaintext

    def test_zero_key_zero_block(self):
        assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == "66e94bd4ef8a2c3b884cfa59ca342b2e"

    def test_invalid_key_and_block_sizes(self):
        with pytest.raises(ParameterError):
            AES(b"short")
        cipher = AES(bytes(16))
        with pytest.raises(ParameterError):
            cipher.encrypt_block(b"too short")
        with pytest.raises(ParameterError):
            cipher.decrypt_block(bytes(17))

    @given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
    @settings(max_examples=25)
    def test_encrypt_decrypt_roundtrip(self, block, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestPadding:
    def test_pad_lengths(self):
        assert pkcs7_pad(b"") == bytes([16]) * 16
        assert pkcs7_pad(b"a" * 16)[-1] == 16
        assert len(pkcs7_pad(b"abc")) == 16

    def test_unpad_roundtrip(self):
        for length in range(0, 40):
            data = bytes(range(length % 256))[:length]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_garbage(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"a" * 15 + b"\x00")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"a" * 14 + b"\x02\x03")
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"a" * 17)

    def test_pad_invalid_block_size(self):
        with pytest.raises(ParameterError):
            pkcs7_pad(b"x", 0)


class TestModes:
    def test_cbc_roundtrip(self):
        key, iv = bytes(16), bytes(range(16))
        for message in (b"", b"short", b"x" * 64, bytes(range(200))):
            assert decrypt_cbc(key, iv, encrypt_cbc(key, iv, message)) == message

    def test_cbc_iv_matters(self):
        key = bytes(16)
        ct1 = encrypt_cbc(key, bytes(16), b"message")
        ct2 = encrypt_cbc(key, bytes([1] * 16), b"message")
        assert ct1 != ct2

    def test_cbc_invalid_inputs(self):
        with pytest.raises(ParameterError):
            encrypt_cbc(bytes(16), b"shortiv", b"m")
        with pytest.raises(DecryptionError):
            decrypt_cbc(bytes(16), bytes(16), b"not a multiple of 16")

    def test_ctr_roundtrip_and_symmetry(self):
        key, nonce = bytes(16), bytes(12)
        message = b"counter mode needs no padding"
        ciphertext = encrypt_ctr(key, nonce, message)
        assert len(ciphertext) == len(message)
        assert decrypt_ctr(key, nonce, ciphertext) == message

    def test_ctr_nonce_size(self):
        with pytest.raises(ParameterError):
            encrypt_ctr(bytes(16), bytes(11), b"m")

    @given(st.binary(max_size=300))
    @settings(max_examples=25)
    def test_ctr_roundtrip_property(self, message):
        key, nonce = bytes(range(16)), bytes(range(12))
        assert decrypt_ctr(key, nonce, encrypt_ctr(key, nonce, message)) == message


class TestSymmetricEnvelope:
    def test_seal_open_roundtrip(self, rng):
        env = SymmetricEnvelope(b"a 16-byte secret")
        sealed = env.seal(b"payload", b"sender", rng)
        assert env.open(sealed, b"sender") == b"payload"

    def test_group_element_roundtrip(self, rng):
        env = SymmetricEnvelope(98765432109876543210)
        sealed = env.seal_group_element(123456789, b"U1", rng)
        assert env.open_group_element(sealed, b"U1") == 123456789

    def test_wrong_sender_rejected(self, rng):
        env = SymmetricEnvelope(42)
        sealed = env.seal(b"data", b"U1", rng)
        with pytest.raises(DecryptionError):
            env.open(sealed, b"U2")

    def test_wrong_key_rejected(self, rng):
        sealed = SymmetricEnvelope(42).seal(b"data", b"U1", rng)
        with pytest.raises(DecryptionError):
            SymmetricEnvelope(43).open(sealed, b"U1")

    def test_tampered_ciphertext_rejected(self, rng):
        env = SymmetricEnvelope(42)
        sealed = env.seal(b"data", b"U1", rng)
        tampered = AuthenticatedCiphertext(
            nonce=sealed.nonce,
            ciphertext=bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:],
            tag=sealed.tag,
        )
        with pytest.raises(DecryptionError):
            env.open(tampered, b"U1")

    def test_tampered_tag_rejected(self, rng):
        env = SymmetricEnvelope(42)
        sealed = env.seal(b"data", b"U1", rng)
        tampered = AuthenticatedCiphertext(
            nonce=sealed.nonce, ciphertext=sealed.ciphertext, tag=bytes(32)
        )
        with pytest.raises(DecryptionError):
            env.open(tampered, b"U1")

    def test_wire_roundtrip_and_size(self, rng):
        env = SymmetricEnvelope(42)
        sealed = env.seal(b"data", b"U1", rng)
        blob = sealed.to_bytes()
        parsed = AuthenticatedCiphertext.from_bytes(blob)
        assert parsed == sealed
        assert sealed.wire_bits == 8 * len(blob)

    def test_invalid_key_material(self):
        with pytest.raises(ParameterError):
            SymmetricEnvelope(b"")
        with pytest.raises(ParameterError):
            SymmetricEnvelope(3.5)  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            group_key_to_bytes(0)

    @given(st.binary(max_size=200), st.binary(min_size=1, max_size=16))
    @settings(max_examples=25)
    def test_roundtrip_property(self, payload, sender):
        env = SymmetricEnvelope(b"0123456789abcdef")
        rng = DeterministicRNG(payload + sender)
        assert env.open(env.seal(payload, sender, rng), sender) == payload
