"""Property-based tests on whole-protocol invariants.

These use hypothesis to drive the protocols with randomly chosen group sizes
and randomly ordered membership-event sequences, checking the invariants the
paper's correctness rests on:

* every honest run ends with all members agreeing on the key,
* every membership event changes the key (key freshness),
* departed members are removed from the state and never charged for the
  re-keying traffic,
* Lemma 1 (the X-product telescopes to 1) holds for arbitrary exponent
  choices, not just protocol-generated ones.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GroupSession,
    ProposedGKAProtocol,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)
from repro.groups.params import get_schnorr_group
from repro.pki import Identity

_SETUP = SystemSetup.from_param_sets("test-256", "gq-test-256")
_SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


class TestBDAlgebraProperties:
    @given(
        exponents=st.lists(st.integers(min_value=1, max_value=2**30), min_size=2, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_lemma1_for_arbitrary_exponents(self, exponents):
        group = get_schnorr_group("test-128")
        exponents = [e % group.q or 1 for e in exponents]
        n = len(exponents)
        z = [group.exp_g(r) for r in exponents]
        x_values = [
            compute_bd_x_value(group, z[(i + 1) % n], z[(i - 1) % n], exponents[i]) for i in range(n)
        ]
        assert verify_x_product(group, x_values)

    @given(
        exponents=st.lists(st.integers(min_value=1, max_value=2**30), min_size=2, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_member_derives_the_same_bd_key(self, exponents):
        group = get_schnorr_group("test-128")
        exponents = [e % group.q or 1 for e in exponents]
        n = len(exponents)
        names = [f"p{i}" for i in range(n)]
        z_table = {names[i]: group.exp_g(exponents[i]) for i in range(n)}
        x_table = {
            names[i]: compute_bd_x_value(
                group, z_table[names[(i + 1) % n]], z_table[names[(i - 1) % n]], exponents[i]
            )
            for i in range(n)
        }
        keys = {
            compute_bd_key(group, names, names[i], exponents[i], z_table, x_table) for i in range(n)
        }
        assert len(keys) == 1
        expected_exponent = sum(exponents[i] * exponents[(i + 1) % n] for i in range(n)) % group.q
        assert keys.pop() == pow(group.g, expected_exponent, group.p)


class TestProtocolProperties:
    @given(size=st.integers(min_value=2, max_value=8), seed=st.integers(min_value=0, max_value=10**6))
    @_SLOW
    def test_gka_always_agrees(self, size, seed):
        members = [Identity(f"prop-{seed}-{i}") for i in range(size)]
        result = ProposedGKAProtocol(_SETUP).run(members, seed=seed)
        assert result.all_agree()
        assert _SETUP.group.is_subgroup_element(result.group_key)

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        events=st.lists(st.sampled_from(["join", "leave", "partition", "merge"]), min_size=1, max_size=5),
    )
    @_SLOW
    def test_event_sequences_preserve_agreement_and_freshness(self, seed, events):
        members = [Identity(f"seq-{seed}-{i}") for i in range(5)]
        session = GroupSession.establish(_SETUP, members, seed=seed)
        seen_keys = {session.group_key}
        counter = 0
        for event in events:
            counter += 1
            if event == "join":
                session.join(Identity(f"seq-{seed}-new-{counter}"))
            elif event == "leave":
                removable = [m for m in session.members[1:]]
                if len(session.members) <= 3 or not removable:
                    session.join(Identity(f"seq-{seed}-new-{counter}"))
                else:
                    session.leave(removable[counter % len(removable)])
            elif event == "partition":
                removable = session.members[1:]
                if len(session.members) <= 4:
                    session.join(Identity(f"seq-{seed}-new-{counter}"))
                else:
                    session.partition(removable[: 2])
            else:  # merge
                other_members = [Identity(f"seq-{seed}-m{counter}-{i}") for i in range(2)]
                other = GroupSession.establish(_SETUP, other_members, seed=f"{seed}-{counter}")
                session.merge(other)
            assert session.all_agree()
            assert session.group_key not in seen_keys  # key freshness after every event
            seen_keys.add(session.group_key)
        # Membership bookkeeping stayed consistent.
        assert len(session.members) == len(set(m.name for m in session.members))
        assert set(session.state.parties) == {m.name for m in session.members}

    @given(size=st.integers(min_value=3, max_value=7), seed=st.integers(min_value=0, max_value=1000))
    @_SLOW
    def test_leave_removes_exactly_one_member_and_changes_key(self, size, seed):
        members = [Identity(f"lv-{seed}-{i}") for i in range(size)]
        session = GroupSession.establish(_SETUP, members, seed=seed)
        old_key = session.group_key
        victim = session.members[1 + seed % (size - 1)]
        session.leave(victim)
        assert victim.name not in {m.name for m in session.members}
        assert len(session.members) == size - 1
        assert session.group_key != old_key
        assert session.all_agree()
