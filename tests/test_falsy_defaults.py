"""Regression tests for the ``x or Default()`` falsy-default bug class.

PR 1 fixed ``medium or BroadcastMedium()`` silently discarding an *empty*
shared medium (empty == falsy == replaced by a fresh default, losing the
cross-protocol traffic ledger).  This file audits the remaining
caller-supplied defaults across the sim/engine/network layers: every one
must test ``is None``, never truthiness, so a falsy-but-real instance is
respected.  Each test passes a subclass that is explicitly falsy and asserts
the supplied object is actually used.
"""

from __future__ import annotations

from repro.core import SystemSetup, create_protocol
from repro.core.session import GroupSession
from repro.energy.accounting import DeviceProfile
from repro.engine.executor import EngineConfig, MachineExecutor
from repro.engine.latency import FixedLatency
from repro.mathutils.rand import DeterministicRNG
from repro.network.medium import BroadcastMedium
from repro.pki import Identity
from repro.sim import Scenario, ScenarioRunner


class FalsyDevice(DeviceProfile):
    def __bool__(self) -> bool:
        return False


class FalsyEngineConfig(EngineConfig):
    def __bool__(self) -> bool:
        return False


class FalsyRNG(DeterministicRNG):
    def __bool__(self) -> bool:
        return False


def test_scenario_runner_keeps_a_falsy_device_profile(small_setup):
    device = FalsyDevice()
    runner = ScenarioRunner(small_setup, device=device)
    assert runner.device is device


def test_scenario_runner_keeps_a_falsy_engine_config_under_attack(small_setup):
    # The attacked path rebuilds the engine config via dataclasses.replace;
    # before the `is None` fix a falsy config was swapped for the instant-mode
    # default, silently discarding the latency model.
    from repro.sim import AdversaryConfig

    engine = FalsyEngineConfig(latency=FixedLatency(0.01))
    runner = ScenarioRunner(small_setup, engine=engine, check_agreement=False)
    scenario = Scenario(
        name="falsy-engine",
        initial_size=4,
        seed=3,
        adversary=AdversaryConfig(),  # passive eavesdropper
    )
    report = runner.run("proposed-gka", scenario)
    assert report.total_sim_latency_s > 0.0  # the latency model survived


def test_machine_executor_keeps_a_falsy_engine_config():
    config = FalsyEngineConfig(latency=FixedLatency(0.5))
    executor = MachineExecutor([], BroadcastMedium(), config=config)
    assert executor.config is config
    assert executor.latency is config.latency


def test_broadcast_medium_keeps_a_falsy_rng():
    rng = FalsyRNG("falsy-medium")
    medium = BroadcastMedium(loss_probability=0.2, rng=rng)
    assert medium._rng is rng


def test_group_session_keeps_a_falsy_device_profile(small_setup):
    members = [Identity(f"fd-{i}") for i in range(4)]
    state = create_protocol("bd", small_setup).run(members, seed=1).state
    device = FalsyDevice()
    session = GroupSession(small_setup, state, device)
    assert session.device is device
