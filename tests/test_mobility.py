"""The mobility subsystem: fields, models, radio links, relaying, emergent churn.

The determinism contract is the headline: two runs from the same master seed
must produce identical trajectories, identical emergent partition/merge event
streams and identical per-node energy ledgers, and distinct seeds must
diverge.  The rest exercises each layer in isolation — grid/waypoint/RPGM
motion, the distance-dependent link model, bounded flooding with relay
charging, and the connectivity monitor — plus the scenario-engine
integration and the report exports.
"""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.exceptions import NetworkError, ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.mobility import (
    Area,
    ConnectivityMonitor,
    MobilityConfig,
    MobilityField,
    MobilityModel,
    MultiHopMedium,
    RadioLink,
    RandomWaypoint,
    ReferencePointGroup,
    StaticGrid,
)
from repro.mobility.models import NodeMotion
from repro.network import BroadcastMedium, Message, Node, UniformLink, group_element_part
from repro.pki import Identity
from repro.sim import (
    PeriodicMerges,
    PoissonChurn,
    Scenario,
    ScenarioRunner,
    comparison_csv,
    comparison_json,
    comparison_table,
)


def _rng(seed="mobility-test"):
    return DeterministicRNG(seed, label="test")


def _field(names, model, area=Area(400.0, 400.0), tick=1.0, seed="mobility-test"):
    return MobilityField(names, model, area, tick, _rng(seed))


class _FixedMotion(NodeMotion):
    def __init__(self, position):
        self.position = position

    def advance(self, dt, step):
        pass


class _Fixed(MobilityModel):
    """Test model: every node pinned to an explicit position."""

    def __init__(self, positions):
        self.positions = dict(positions)

    def build(self, names, area, rng):
        return {name: _FixedMotion(self.positions[name]) for name in names}


class _ScriptedMotion(NodeMotion):
    def __init__(self, path):
        self._path = path
        self._step = 0
        self.position = path(0)

    def advance(self, dt, step):
        self._step = step
        self.position = self._path(step)


class _Scripted(MobilityModel):
    """Test model: position is an explicit function of the tick index."""

    def __init__(self, paths):
        self.paths = dict(paths)

    def build(self, names, area, rng):
        return {name: _ScriptedMotion(self.paths[name]) for name in names}


def _message(sender, bits=512):
    return Message.broadcast(sender, "round1", [group_element_part("z", 7, bits)])


# ---------------------------------------------------------------------------
# Fields and models
# ---------------------------------------------------------------------------

class TestModels:
    NAMES = [f"n{i:02d}" for i in range(9)]

    def test_static_grid_fills_area_and_never_moves(self):
        field = _field(self.NAMES, StaticGrid())
        before = field.snapshot()
        field.advance_ticks(25)
        assert field.snapshot() == before
        xs = [x for x, _ in before.values()]
        ys = [y for _, y in before.values()]
        assert len(set(before.values())) == len(self.NAMES)
        assert min(xs) > 0 and max(xs) < 400 and min(ys) > 0 and max(ys) < 400

    def test_random_waypoint_moves_within_area(self):
        field = _field(self.NAMES, RandomWaypoint(min_speed=2.0, max_speed=8.0))
        start = field.snapshot()
        field.advance_ticks(40)
        end = field.snapshot()
        assert all(start[name] != end[name] for name in self.NAMES)
        for x, y in end.values():
            assert 0.0 <= x <= 400.0 and 0.0 <= y <= 400.0

    def test_same_seed_same_trajectories_distinct_seeds_diverge(self):
        model = RandomWaypoint(min_speed=2.0, max_speed=8.0)
        a, b = _field(self.NAMES, model), _field(self.NAMES, model)
        c = _field(self.NAMES, model, seed="other")
        for _ in range(30):
            a.advance_ticks(1)
            b.advance_ticks(1)
            c.advance_ticks(1)
            assert a.snapshot() == b.snapshot()
        assert a.snapshot() != c.snapshot()

    def test_trajectories_do_not_depend_on_other_nodes(self):
        # Named per-node streams: n00's path is the same whether it shares
        # the field with 2 or 8 other nodes.
        model = RandomWaypoint(min_speed=2.0, max_speed=8.0)
        small = _field(self.NAMES[:3], model)
        large = _field(self.NAMES, model)
        small.advance_ticks(20)
        large.advance_ticks(20)
        assert small.position("n00") == large.position("n00")

    def test_rpgm_members_ride_their_leader(self):
        model = ReferencePointGroup(
            groups=3, min_speed=2.0, max_speed=6.0, member_radius=40.0, member_speed=1.0
        )
        field = _field(self.NAMES, model)
        field.advance_ticks(30)
        # Same squad (index % 3): pairwise distance bounded by the squad disk.
        for squad in range(3):
            members = [name for i, name in enumerate(self.NAMES) if i % 3 == squad]
            for a in members:
                for b in members:
                    assert field.distance(a, b) <= 80.0 + 1e-9

    def test_field_rejects_unknown_names_and_rewinds(self):
        field = _field(self.NAMES[:3], StaticGrid())
        with pytest.raises(ParameterError, match="not part of this mobility field"):
            field.position("ghost")
        field.advance_to(5.0)
        with pytest.raises(ParameterError, match="rewind"):
            field.advance_to(2.0)

    def test_advance_to_quantises_to_ticks(self):
        field = _field(self.NAMES[:3], StaticGrid(), tick=2.0)
        field.advance_to(7.1)  # rounds to 8s = 4 ticks
        assert field.step_count == 4 and field.time == 8.0


# ---------------------------------------------------------------------------
# Link models
# ---------------------------------------------------------------------------

class TestRadioLink:
    def _link(self, **kwargs):
        positions = {"a": (0.0, 0.0), "b": (60.0, 0.0), "c": (99.0, 0.0), "d": (150.0, 0.0)}
        field = _field(list(positions), _Fixed(positions))
        return RadioLink(field, 100.0, **kwargs)

    def test_reachability_is_the_range_cutoff(self):
        link = self._link()
        assert link.reachable("a", "b") and link.reachable("a", "c")
        assert not link.reachable("a", "d")
        assert not link.reachable("a", "a")

    def test_loss_rises_with_distance(self):
        link = self._link(base_loss=0.02, edge_loss=0.4)
        near, mid, edge = (
            link.loss_probability("a", "a"),
            link.loss_probability("a", "b"),
            link.loss_probability("a", "c"),
        )
        assert near == pytest.approx(0.02)
        assert near < mid < edge < 0.4 + 1e-9
        assert link.loss_probability("a", "d") == 1.0

    def test_uniform_link_is_the_degenerate_case(self):
        # The same seed drives identical loss draws whether the knob is the
        # plain constructor argument or an explicit UniformLink (which is the
        # single source of truth when passed).
        members = [Identity(f"u{i}") for i in range(4)]
        receipts = []
        for medium in (
            BroadcastMedium(loss_probability=0.3, rng=_rng("deg")),
            BroadcastMedium(link_model=UniformLink(0.3), rng=_rng("deg")),
        ):
            assert medium.loss_probability == 0.3
            for identity in members:
                medium.attach(Node(identity))
            receipts.append([medium.send(_message(m)).attempts for m in members])
        assert receipts[0] == receipts[1]
        assert any(attempts > 1 for attempts in receipts[0])

    def test_single_hop_medium_refuses_out_of_range_members(self):
        # A single-hop domain has no relays, so an addressed member beyond
        # direct range is a hard error (not a silent skip that would surface
        # later as a baffling protocol failure).
        positions = {"a": (0.0, 0.0), "b": (50.0, 0.0), "d": (500.0, 0.0)}
        field = _field(list(positions), _Fixed(positions))
        medium = BroadcastMedium(link_model=RadioLink(field, 100.0))
        for name in positions:
            medium.attach(Node(Identity(name)))
        with pytest.raises(NetworkError, match="single-hop medium cannot relay"):
            medium.send(_message(Identity("a")))
        # Within range, the same medium delivers normally.
        near = Message.unicast(Identity("a"), Identity("b"), "round1", _message(Identity("a")).parts)
        receipt = medium.send(near)
        assert [i.name for i in receipt.delivered_to] == ["b"]


# ---------------------------------------------------------------------------
# Multi-hop relaying
# ---------------------------------------------------------------------------

class TestMultiHopMedium:
    def _line_medium(self, spacing=100.0, names=("a", "b", "c"), tx_range=120.0, **kwargs):
        positions = {name: (i * spacing, 0.0) for i, name in enumerate(names)}
        field = _field(list(names), _Fixed(positions))
        medium = MultiHopMedium(field, RadioLink(field, tx_range), rng=_rng("hop"), **kwargs)
        nodes = {name: medium.attach(Node(Identity(name))) for name in names}
        return medium, nodes

    def test_flood_reaches_across_hops_and_charges_relays(self):
        medium, nodes = self._line_medium()
        receipt = medium.send(_message(Identity("a")))
        assert {i.name for i in receipt.delivered_to} == {"b", "c"}
        assert receipt.hops == 2
        assert receipt.attempts == 1
        # a and the b relay both transmitted; the relay share is b's bits.
        assert receipt.transmissions >= 2
        assert receipt.relay_bits == 512
        assert nodes["b"].recorder.tx_bits == 512
        assert nodes["c"].recorder.rx_bits >= 512
        assert medium.total_relay_bits() == 512
        assert medium.total_transmissions() == receipt.transmissions
        # bits-with-retries counts every physical copy (origin + relays), so
        # it matches what the recorders were charged in aggregate.
        assert medium.total_bits(include_retries=True) == 512 * receipt.transmissions
        assert medium.total_bits(include_retries=True) > medium.total_bits()

    def test_single_hop_group_has_no_relay_traffic(self):
        medium, nodes = self._line_medium(spacing=10.0)
        receipt = medium.send(_message(Identity("a")))
        assert receipt.hops == 1 and receipt.relay_bits == 0
        assert medium.total_relay_bits() == 0

    def test_unreachable_member_raises(self):
        medium, _ = self._line_medium(names=("a", "b", "c", "far"), spacing=100.0)
        # "far" sits at 300m; c..far gap is 100 <= 120, so move it: rebuild
        # with a real gap instead.
        medium, _ = self._line_medium(names=("a", "b"), spacing=500.0, tx_range=120.0)
        with pytest.raises(NetworkError, match="no relay path"):
            medium.send(_message(Identity("a")))

    def test_lossy_links_recover_via_retry_waves(self):
        medium, _ = self._line_medium(tx_range=150.0)
        medium.link_model.base_loss = 0.3
        medium.link_model.edge_loss = 0.6
        attempts = [medium.send(_message(Identity("a"), bits=256)).attempts for _ in range(30)]
        assert all(a >= 1 for a in attempts)
        assert any(a > 1 for a in attempts)  # some floods needed a retry wave
        assert max(a for a in attempts) <= medium.max_retries + 1

    def test_max_hops_bounds_each_flood_wave(self):
        names = tuple(f"n{i}" for i in range(6))
        # A 2-hop TTL cannot cover a 5-hop line in one wave; with no retry
        # waves allowed the send fails outright.
        medium, _ = self._line_medium(
            names=names, spacing=100.0, tx_range=120.0, max_hops=2, max_retries=0
        )
        with pytest.raises(NetworkError, match="missing"):
            medium.send(_message(Identity("n0")))
        # Retry waves re-flood from every holder, so coverage creeps outward
        # wave by wave and eventually completes.
        medium, _ = self._line_medium(
            names=names, spacing=100.0, tx_range=120.0, max_hops=2, max_retries=4
        )
        receipt = medium.send(_message(Identity("n0")))
        assert {i.name for i in receipt.delivered_to} == set(names) - {"n0"}
        assert receipt.attempts > 1

    def test_multi_hop_costs_strictly_more_than_single_hop(self, small_setup):
        # The same 4-member GKA: compact layout (everyone in range, the
        # degenerate case) vs stretched line (2 relay hops needed).  Relaying
        # must make the stretched run strictly more expensive end to end.
        from repro.core import create_protocol
        from repro.energy import DeviceProfile

        members = [Identity(f"line{i}") for i in range(4)]
        names = [m.name for m in members]
        device = DeviceProfile()
        totals = {}
        for label, spacing in (("compact", 20.0), ("stretched", 100.0)):
            positions = {name: (i * spacing, 0.0) for i, name in enumerate(names)}
            field = _field(names, _Fixed(positions))
            medium = MultiHopMedium(field, RadioLink(field, 120.0), rng=_rng("cost"))
            result = create_protocol("bd", small_setup).run(members, medium=medium, seed=9)
            assert result.all_agree()
            totals[label] = (
                sum(device.total_j(r) for r in result.state.recorders().values()),
                medium.total_relay_bits(),
            )
        assert totals["compact"][1] == 0
        assert totals["stretched"][1] > 0
        assert totals["stretched"][0] > totals["compact"][0]


# ---------------------------------------------------------------------------
# Connectivity-driven churn
# ---------------------------------------------------------------------------

class TestConnectivityMonitor:
    def _walkabout_field(self):
        # Five nodes: u0..u3 clustered; u3 and u4 walk out together at t=5
        # and come back at t=15 (tick = 1s).
        cluster = {"u0": (0.0, 0.0), "u1": (50.0, 0.0), "u2": (0.0, 50.0)}

        def stay(position):
            return lambda step: position

        def wander(position):
            return lambda step: (position[0] + 400.0, position[1]) if 5 <= step < 15 else position

        paths = {name: stay(pos) for name, pos in cluster.items()}
        paths["u3"] = wander((50.0, 50.0))
        paths["u4"] = wander((80.0, 50.0))
        return _field(list(paths), _Scripted(paths))

    def _monitor(self, field, **kwargs):
        universe = [Identity(name) for name in sorted(field.names())]
        return ConnectivityMonitor(field, RadioLink(field, 120.0), universe, **kwargs)

    def test_partition_and_merge_emerge_from_motion(self):
        monitor = self._monitor(self._walkabout_field())
        assert [i.name for i in monitor.initial_members()] == ["u0", "u1", "u2", "u3", "u4"]
        events = monitor.emergent_events(30.0)
        kinds = [(when, event.kind) for when, event in events]
        assert kinds == [(5.0, "partition"), (15.0, "merge")]
        partition = events[0][1]
        assert sorted(i.name for i in partition.leaving) == ["u3", "u4"]
        merge = events[1][1]
        assert sorted(i.name for i in merge.other_group) == ["u3", "u4"]
        assert [i.name for i in monitor.group_members()] == ["u0", "u1", "u2", "u3", "u4"]

    def test_settle_ticks_filter_boundary_flapping(self):
        field = self._walkabout_field()
        monitor = self._monitor(field, settle_ticks=2)
        events = monitor.emergent_events(30.0)
        assert [(when, event.kind) for when, event in events] == [
            (6.0, "partition"),
            (16.0, "merge"),
        ]

    def test_min_group_size_defers_departures(self):
        # With min_group_size=5 the whole universe must stay a group: the
        # walkabout would shrink it to 3, so no event is ever emitted.
        monitor = self._monitor(self._walkabout_field(), min_group_size=5)
        assert monitor.emergent_events(30.0) == []

    def test_no_event_fires_while_a_nominal_member_is_unreachable(self):
        # Regression: u3 drifts out while the group is at the viability floor
        # (departure deferred), then u4 wanders into range.  Emitting the
        # join while u3 is still a nominal-but-unreachable member would hand
        # the runner an event the flooding medium cannot deliver; both events
        # must instead fire together once the post-event group is connected.
        cluster = {"u0": (0.0, 0.0), "u1": (50.0, 0.0), "u2": (0.0, 50.0)}
        paths = {name: (lambda pos: lambda step: pos)(pos) for name, pos in cluster.items()}
        # u3 starts connected, leaves for good at step 4.
        paths["u3"] = lambda step: (50.0, 50.0) if step < 4 else (900.0, 900.0)
        # u4 starts far away and arrives at step 8 (while u3 is deferred).
        paths["u4"] = lambda step: (80.0, 50.0) if step >= 8 else (900.0, 0.0)
        field = _field(list(paths), _Scripted(paths), area=Area(1000.0, 1000.0))
        monitor = self._monitor(field, min_group_size=4)
        assert [i.name for i in monitor.initial_members()] == ["u0", "u1", "u2", "u3"]
        events = monitor.emergent_events(20.0)
        # Nothing between steps 4..7 (u3's leave would breach the floor);
        # at step 8 the leave and the join resolve in one tick, leave first.
        assert [(when, event.kind) for when, event in events] == [
            (8.0, "leave"),
            (8.0, "join"),
        ]
        assert [i.name for i in monitor.group_members()] == ["u0", "u1", "u2", "u4"]

    def test_member_bridged_only_by_a_non_member_counts_as_departed(self):
        # The medium relays over group members only, so a member whose sole
        # path to the controller runs through a non-member is undeliverable:
        # it must leave, even though the universe-wide graph is connected.
        def still(pos):
            return lambda step: pos

        paths = {"c": still((0.0, 0.0)), "a": still((50.0, 0.0))}
        paths["m"] = lambda step: (100.0, 0.0) if step < 5 else (220.0, 0.0)
        paths["z"] = lambda step: (800.0, 0.0) if step < 5 else (110.0, 0.0)
        field = _field(list(paths), _Scripted(paths), area=Area(1000.0, 1000.0))
        monitor = self._monitor(field)
        assert [i.name for i in monitor.initial_members()] == ["a", "c", "m"]
        events = monitor.emergent_events(10.0)
        # At step 5, z (not yet a member) bridges the controller and m in the
        # universe graph, but the member-induced graph has m disconnected: m
        # leaves, and z joins (its join-time group is deliverable).  One tick
        # later z *is* a member, so it legitimately relays for m and m
        # rejoins through it.
        assert [(when, event.kind) for when, event in events] == [
            (5.0, "leave"),
            (5.0, "join"),
            (6.0, "join"),
        ]
        assert events[0][1].leaving.name == "m"
        assert events[1][1].joining.name == "z"
        assert events[2][1].joining.name == "m"
        assert {i.name for i in monitor.group_members()} == {"a", "c", "m", "z"}

    def test_mass_swap_at_the_floor_stalls_instead_of_crashing(self):
        # Both non-controller members cross out-hysteresis on the same tick
        # two newcomers cross in: emitting the partition first would leave
        # the controller alone (below any viable group).  The monitor must
        # defer everything — the group simply stalls, no event stream that
        # the runner cannot execute.
        def still(pos):
            return lambda step: pos

        paths = {"c": still((0.0, 0.0))}
        paths["a"] = lambda step: (50.0, 0.0) if step < 3 else (800.0, 800.0)
        paths["b"] = lambda step: (0.0, 50.0) if step < 3 else (830.0, 800.0)
        paths["d"] = lambda step: (400.0, 400.0) if step < 3 else (50.0, 50.0)
        paths["e"] = lambda step: (430.0, 400.0) if step < 3 else (80.0, 50.0)
        field = _field(list(paths), _Scripted(paths), area=Area(1000.0, 1000.0))
        monitor = self._monitor(field)
        assert {i.name for i in monitor.initial_members()} == {"c", "a", "b"}
        assert monitor.emergent_events(10.0) == []
        assert {i.name for i in monitor.group_members()} == {"c", "a", "b"}

    def test_sparse_initial_component_is_rejected(self):
        positions = {"u0": (0.0, 0.0), "u1": (300.0, 0.0), "u2": (399.0, 399.0)}
        field = _field(list(positions), _Fixed(positions))
        monitor = self._monitor(field)
        with pytest.raises(ParameterError, match="connected to"):
            monitor.initial_members()


# ---------------------------------------------------------------------------
# Scenario integration and determinism
# ---------------------------------------------------------------------------

def _mobility_scenario(seed="t24", name="rwp-12"):
    return Scenario(
        name=name,
        initial_size=12,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(420.0, 420.0),
            tx_range=140.0,
            duration=150.0,
            tick=2.0,
            edge_loss=0.1,
            settle_ticks=2,
        ),
        seed=seed,
    )


class TestMobilityScenarios:
    def test_schedule_and_mobility_are_mutually_exclusive(self):
        with pytest.raises(ParameterError, match="not both"):
            Scenario(
                name="both",
                initial_size=8,
                schedule=PoissonChurn(length=3),
                mobility=_mobility_scenario().mobility,
            )

    def test_mobility_rejects_the_uniform_loss_knob(self):
        # Loss on mobile scenarios comes from distance (base/edge_loss), so a
        # silently-ignored uniform knob is a configuration error.
        with pytest.raises(ParameterError, match="base_loss"):
            Scenario(
                name="knob",
                initial_size=8,
                mobility=_mobility_scenario().mobility,
                loss_probability=0.2,
            )

    def test_initial_members_are_the_controller_component(self):
        scenario = _mobility_scenario()
        members = scenario.initial_members()
        assert members[0].name == "member-000"
        assert 3 <= len(members) <= scenario.initial_size

    def test_event_stream_is_deterministic_and_seed_sensitive(self):
        first = _mobility_scenario().build_events()
        second = _mobility_scenario().build_events()
        assert [(e.time, e.kind) for e in first] == [(e.time, e.kind) for e in second]
        other = _mobility_scenario(seed="t0").build_events()
        assert [(e.time, e.kind) for e in first] != [(e.time, e.kind) for e in other]

    def test_mobility_churn_contains_emergent_partitions_and_merges(self):
        kinds = [e.kind for e in _mobility_scenario().build_events()]
        assert "partition" in kinds and "merge" in kinds

    @pytest.fixture(scope="class")
    def mobility_reports(self, small_setup):
        runner = ScenarioRunner(small_setup)
        scenario = _mobility_scenario()
        return runner.run_all(["proposed", "bd"], scenario)

    def test_protocols_survive_mobility_churn(self, mobility_reports):
        for report in mobility_reports:
            assert report.agreed_throughout
            assert report.total_relay_bits > 0
            assert report.total_relay_energy_j > 0
            assert report.total_transmissions > report.total_messages
            assert report.mean_hops > 1.0

    def test_identical_seeds_reproduce_energy_ledgers_exactly(self, small_setup, mobility_reports):
        rerun = ScenarioRunner(small_setup).run("proposed", _mobility_scenario())
        baseline = mobility_reports[0]
        assert rerun.per_member_energy_j() == baseline.per_member_energy_j()
        assert [
            (r.kind, r.time, r.messages, r.bits, r.transmissions, r.relay_bits)
            for r in rerun.records
        ] == [
            (r.kind, r.time, r.messages, r.bits, r.transmissions, r.relay_bits)
            for r in baseline.records
        ]

    def test_distinct_seeds_diverge(self, small_setup, mobility_reports):
        other = ScenarioRunner(small_setup).run("proposed", _mobility_scenario(seed="t0"))
        assert other.per_member_energy_j() != mobility_reports[0].per_member_energy_j()

    def test_comparison_table_shows_relay_columns(self, mobility_reports):
        table = comparison_table(mobility_reports)
        assert "relay J" in table and "hops" in table and "tx" in table


class TestMasterSeedPlumbing:
    def test_establishment_is_independent_of_the_schedule(self, small_setup):
        # Named child seeds: swapping the churn schedule (a different
        # consumer) must not perturb the establishment's draws or the
        # medium's loss stream for step 0.
        runner = ScenarioRunner(small_setup)
        records = []
        for schedule in (PoissonChurn(length=3), PeriodicMerges(merges=2, merge_size=2)):
            scenario = Scenario(
                name="plumbing",
                initial_size=6,
                schedule=schedule,
                seed="iso",
                loss_probability=0.2,
            )
            report = runner.run("proposed", scenario)
            records.append(report.records[0])
        first, second = records
        assert first.energy_j == second.energy_j
        assert first.bits_with_retries == second.bits_with_retries

    def test_scenarios_without_churn_are_allowed(self, small_setup):
        scenario = Scenario(name="static", initial_size=5, seed=3)
        assert scenario.build_events() == []
        report = ScenarioRunner(small_setup).run("bd", scenario)
        assert len(report.records) == 1 and report.agreed_throughout


# ---------------------------------------------------------------------------
# Report exports
# ---------------------------------------------------------------------------

class TestReportExports:
    @pytest.fixture(scope="class")
    def reports(self, small_setup):
        scenario = Scenario(
            name="export", initial_size=6, schedule=PoissonChurn(length=4), seed=11
        )
        return ScenarioRunner(small_setup).run_all(["proposed", "bd"], scenario)

    def test_report_csv_round_trips(self, reports, tmp_path):
        path = tmp_path / "report.csv"
        text = reports[0].to_csv(str(path))
        assert path.read_text() == text
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(reports[0].records)
        assert rows[0]["kind"] == "establish"
        assert float(rows[0]["total_energy_j"]) == pytest.approx(
            reports[0].records[0].total_energy_j
        )

    def test_report_json_round_trips(self, reports):
        payload = json.loads(reports[0].to_json())
        assert payload["protocol"] == reports[0].protocol
        assert payload["totals"]["messages"] == reports[0].total_messages
        assert len(payload["records"]) == len(reports[0].records)
        assert payload["per_member_energy_j"] == reports[0].per_member_energy_j()

    def test_comparison_csv_and_json(self, reports, tmp_path):
        csv_text = comparison_csv(reports, str(tmp_path / "cmp.csv"))
        rows = list(csv.DictReader(io.StringIO(csv_text)))
        assert [row["protocol"] for row in rows] == [r.protocol for r in reports]
        payload = json.loads(comparison_json(reports))
        assert payload["scenario"] == "export"
        assert len(payload["protocols"]) == len(reports)
        with pytest.raises(ParameterError):
            comparison_csv([])


# ---------------------------------------------------------------------------
# The issue's acceptance scenario: n=50 random waypoint, emergent churn
# ---------------------------------------------------------------------------

def n50_scenario(seed="b18"):
    """The acceptance workload (shared with the mobility benchmark)."""
    return Scenario(
        name="rwp-50",
        initial_size=50,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(900.0, 900.0),
            tx_range=220.0,
            duration=120.0,
            tick=2.0,
            edge_loss=0.15,
            settle_ticks=2,
        ),
        seed=seed,
    )


class TestAcceptance50:
    def test_n50_emergent_churn_for_proposed_and_two_baselines(self, small_setup):
        scenario = n50_scenario()
        assert len(scenario.initial_members()) == 50
        kinds = [e.kind for e in scenario.build_events()]
        assert "partition" in kinds and "merge" in kinds  # no hand-scripted events
        runner = ScenarioRunner(small_setup)
        reports = runner.run_all(["proposed", "bd", "ssn"], scenario)
        for report in reports:
            assert report.agreed_throughout
            # Relay hops are charged measurable energy: strictly more
            # physical transmissions than logical messages, and a non-zero
            # relay share (the single-hop degenerate case has zero).
            assert report.total_transmissions > report.total_messages
            assert report.total_relay_bits > 0
            assert report.total_relay_energy_j > 0
            assert report.mean_hops > 1.0
