"""The hierarchical cluster-tree GKA: tree, partitioning, events, attacks.

Covers the cluster subsystem's contract end to end:

* the content-labelled leftist key tree dirties exactly the leaf-to-root
  path of a rekeyed cluster (the O(log n) localisation claim);
* both registered variants (``cluster-tree[bd]``, ``cluster-tree[gka]``)
  keep every member on the same key after establish / join / leave /
  partition / merge, with untouched clusters keeping their keys;
* a leader's departure re-elects the leader (the new sub-ring controller)
  and the tree's representative follows;
* the security oracles stay green under churn, the eavesdropper scores
  ``clean``, and active injection scores ``detected`` for *both* variants —
  the tree's key-confirmation round catches the forgery that silently
  breaks flat unauthenticated BD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest

from repro.adversary import AdversaryConfig, run_attack_matrix
from repro.cluster import (
    ClusterState,
    ClusterTreeProtocol,
    auto_cluster_size,
    build_tree,
    chunk_members,
    choose_join_cluster,
    geographic_clusters,
    leaf_label,
)
from repro.core.registry import create_protocol, protocol_tags
from repro.engine import EngineConfig, FixedLatency
from repro.exceptions import ParameterError
from repro.network.events import JoinEvent, LeaveEvent, MergeEvent, PartitionEvent
from repro.network.medium import BroadcastMedium
from repro.pki import Identity
from repro.sim import PoissonChurn, Scenario, ScenarioRunner, TraceReplay

CLUSTER_PROTOCOLS = ("cluster-tree[bd]", "cluster-tree[gka]")


def _members(prefix: str, n: int):
    return [Identity(f"{prefix}-{i:03d}") for i in range(n)]


def _establish(setup, protocol_name: str, n: int, *, seed="cluster-test", **kwargs):
    protocol = create_protocol(protocol_name, setup)
    medium = BroadcastMedium()
    result = protocol.run(_members("cl", n), medium=medium, seed=seed, **kwargs)
    return protocol, medium, result


# ---------------------------------------------------------------------------
# Key tree
# ---------------------------------------------------------------------------

class TestClusterTree:
    def _leaves(self, n, epoch=0):
        return [(uid, epoch, f"leader-{uid}") for uid in range(n)]

    @pytest.mark.parametrize(
        "count,depth", [(1, 1), (2, 2), (3, 3), (4, 3), (5, 4), (8, 4), (9, 5)]
    )
    def test_leftist_depth(self, count, depth):
        assert build_tree(self._leaves(count)).depth == depth

    def test_depth_is_logarithmic(self):
        for count in (16, 100, 1000):
            tree = build_tree(self._leaves(count))
            assert tree.depth <= math.ceil(math.log2(count)) + 1

    def test_path_runs_leaf_to_root(self):
        tree = build_tree(self._leaves(5))
        path = tree.path_from_leaf(leaf_label(2, 0))
        assert path[0].label == leaf_label(2, 0)
        assert path[-1].label == tree.root_label
        labels = [node.label for node in path]
        for below, above in zip(labels, labels[1:]):
            parent = tree.nodes[above]
            assert below in (parent.left, parent.right)
            assert tree.sibling(below) in (parent.left, parent.right)
        assert tree.sibling(tree.root_label) is None

    def test_rekey_dirties_exactly_the_leaf_path(self):
        before = build_tree(self._leaves(8))
        cache = {label: 1 for label in before.nodes}
        bumped = [
            (uid, 1 if uid == 3 else 0, f"leader-{uid}") for uid in range(8)
        ]
        after = build_tree(bumped)
        dirty = set(after.dirty_labels(cache))
        path = {node.label for node in after.path_from_leaf(leaf_label(3, 1))}
        assert dirty == path
        assert len(dirty) == after.depth  # O(log n), not O(n)

    def test_append_dirties_only_the_right_spine(self):
        before = build_tree(self._leaves(4))
        cache = {label: 1 for label in before.nodes}
        after = build_tree(self._leaves(5))
        dirty = set(after.dirty_labels(cache))
        # The old 4-leaf subtree is label-identical; only the new leaf and
        # the new root above it are fresh.
        assert dirty == {leaf_label(4, 0), after.root_label}

    def test_representative_is_leftmost_leader(self):
        tree = build_tree(self._leaves(6))
        assert tree.nodes[tree.root_label].rep_name == "leader-0"
        for leaf in tree.leaf_order:
            node = tree.nodes[leaf]
            assert node.is_leaf and node.rep_name == f"leader-{node.cluster_uid}"

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            build_tree([])


# ---------------------------------------------------------------------------
# Partitioning strategies
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Point:
    x: float
    y: float


class _FakeField:
    """The slice of the mobility-field API the partitioner consumes."""

    def __init__(self, positions):
        self._positions = {name: _Point(*xy) for name, xy in positions.items()}

    def __contains__(self, name):
        return name in self._positions

    def position(self, name):
        return self._positions[name]

    def distance(self, a, b):
        pa, pb = self._positions[a], self._positions[b]
        return math.hypot(pa.x - pb.x, pa.y - pb.y)


class TestPartitioning:
    def test_auto_cluster_size(self):
        assert auto_cluster_size(2) == 2
        assert auto_cluster_size(4) == 2
        assert auto_cluster_size(100) == 10
        assert auto_cluster_size(10_000) == 100

    def test_chunks_are_balanced_and_ordered(self):
        members = _members("chunk", 10)
        chunks = chunk_members(members, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [m.name for chunk in chunks for m in chunk] == [m.name for m in members]

    def test_no_chunk_below_two(self):
        for n in range(2, 20):
            for target in (2, 3, 5):
                assert all(len(c) >= 2 for c in chunk_members(_members("m", n), target))

    def test_chunking_needs_two_members(self):
        with pytest.raises(ValueError):
            chunk_members(_members("m", 1), 2)

    def test_geographic_clusters_follow_locality(self):
        west = _members("west", 3)
        east = _members("east", 3)
        field = _FakeField(
            {m.name: (float(i), 0.0) for i, m in enumerate(west)}
            | {m.name: (100.0 + i, 0.0) for i, m in enumerate(east)}
        )
        clusters = geographic_clusters(east + west, 3, field)
        grouped = [sorted(m.name for m in cluster) for cluster in clusters]
        assert sorted(m.name for m in west) in grouped
        assert sorted(m.name for m in east) in grouped

    def test_geographic_falls_back_without_positions(self):
        members = _members("nowhere", 6)
        field = _FakeField({})
        assert geographic_clusters(members, 3, field) == chunk_members(members, 3)

    def test_join_prefers_smallest_then_nearest(self):
        @dataclass
        class _C:
            members: list

            @property
            def leader(self):
                return self.members[0]

            @property
            def size(self):
                return len(self.members)

        big = _C(_members("big", 4))
        small = _C(_members("small", 2))
        joiner = Identity("joiner")
        assert choose_join_cluster([big, small], joiner) == 1
        field = _FakeField(
            {joiner.name: (0.0, 0.0), big.leader.name: (1.0, 0.0), small.leader.name: (50.0, 0.0)}
        )
        assert choose_join_cluster([big, small], joiner, field) == 0


# ---------------------------------------------------------------------------
# Establishment
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", CLUSTER_PROTOCOLS)
class TestClusterEstablishment:
    def test_agreement_and_sparse_state(self, small_setup, protocol):
        _, _, result = _establish(small_setup, protocol, 10)
        assert result.all_agree()
        state = result.state
        assert isinstance(state, ClusterState)
        assert state.size == 10
        assert len(state.clusters) >= 2
        assert all(c.size >= 2 for c in state.clusters)
        assert sum(state.cluster_sizes()) == 10
        # The flat ring the oracles see is the concatenation of the sub-rings.
        assert [m.name for m in state.ring.members] == [
            m.name for c in state.clusters for m in c.members
        ]
        assert "clusters" in state.describe()

    def test_cluster_keys_are_distinct_from_the_group_key(self, small_setup, protocol):
        _, _, result = _establish(small_setup, protocol, 9)
        state = result.state
        keys = [c.cluster_key for c in state.clusters]
        assert all(k is not None and k != result.group_key for k in keys)
        assert len(set(keys)) == len(keys)
        # Each sub-state's view is the cluster key, not the root key.
        for cluster in state.clusters:
            assert cluster.sub_state.group_key == cluster.cluster_key

    def test_root_blinded_key_never_cached_or_transmitted(self, small_setup, protocol):
        _, medium, result = _establish(small_setup, protocol, 10)
        state = result.state
        assert set(state.bk_cache) == set(state.tree.nodes) - {state.tree.root_label}
        root_rounds = {m.round_label for m in medium.transcript}
        assert f"ct-bk/{state.tree.root_label}" not in root_rounds

    def test_same_seed_same_key(self, small_setup, protocol):
        _, _, first = _establish(small_setup, protocol, 8, seed=7)
        _, _, again = _establish(small_setup, protocol, 8, seed=7)
        _, _, other = _establish(small_setup, protocol, 8, seed=8)
        assert first.group_key == again.group_key
        assert first.group_key != other.group_key

    def test_cluster_size_override(self, small_setup, protocol):
        _, _, result = _establish(small_setup, protocol, 12, cluster_size=3)
        assert result.all_agree()
        assert result.state.cluster_sizes() == [3, 3, 3, 3]

    def test_rejects_tiny_groups_and_unknown_options(self, small_setup, protocol):
        with pytest.raises(ParameterError):
            _establish(small_setup, protocol, 1)
        with pytest.raises(ParameterError):
            _establish(small_setup, protocol, 4, warp=9)

    def test_latency_mode_reaches_agreement(self, small_setup, protocol):
        proto = create_protocol(protocol, small_setup)
        medium = BroadcastMedium()
        engine = EngineConfig(latency=FixedLatency(0.01))
        result = proto.run(_members("lat", 6), medium=medium, seed=3, engine=engine)
        assert result.all_agree()
        assert result.sim_latency_s > 0
        assert result.timeouts == 0

    def test_registered_with_cluster_tag(self, small_setup, protocol):
        assert "cluster" in protocol_tags(protocol)
        proto = create_protocol(protocol, small_setup)
        assert isinstance(proto, ClusterTreeProtocol)
        assert proto.name == protocol
        assert "cluster size" in proto.describe()


# ---------------------------------------------------------------------------
# Dynamic events
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", CLUSTER_PROTOCOLS)
class TestClusterEvents:
    @pytest.fixture()
    def established(self, small_setup, protocol):
        return _establish(small_setup, protocol, 10, seed="events")

    def test_join_rekeys_one_cluster_only(self, small_setup, established):
        proto, medium, result = established
        # Events mutate surviving party state in place (the flat dynamic
        # protocols' semantics too), so capture the old key up front.
        old_key = result.group_key
        before = {c.uid: (c.epoch, c.cluster_key) for c in result.state.clusters}
        joined = proto.apply_event(
            result.state, JoinEvent(joining=Identity("cl-new")), medium=medium, seed=1
        )
        assert joined.all_agree()
        assert joined.group_key != old_key
        assert joined.state.size == 11
        changed = [
            c.uid
            for c in joined.state.clusters
            if before.get(c.uid) != (c.epoch, c.cluster_key)
        ]
        assert len(changed) == 1
        host = joined.state.cluster_of("cl-new")
        assert changed == [host.uid]

    def test_leave_preserves_untouched_cluster_keys(self, small_setup, established):
        proto, medium, result = established
        state = result.state
        leaving = state.clusters[-1].members[-1]  # not a leader
        old_key = result.group_key
        before = {c.uid: c.cluster_key for c in state.clusters}
        left = proto.apply_event(state, LeaveEvent(leaving=leaving), medium=medium, seed=2)
        assert left.all_agree()
        assert left.group_key != old_key
        assert leaving.name not in left.state.parties
        shrunk = left.state.cluster_of(state.clusters[-1].members[0].name)
        assert shrunk.cluster_key != before[shrunk.uid]
        for cluster in left.state.clusters:
            if cluster.uid != shrunk.uid:
                assert cluster.cluster_key == before[cluster.uid]

    def test_leader_leave_reelects_the_next_sub_ring_member(self, small_setup, established):
        proto, medium, result = established
        state = result.state
        target = state.clusters[0]
        old_leader, successor = target.members[0], target.members[1]
        left = proto.apply_event(
            state, LeaveEvent(leaving=old_leader), medium=medium, seed=3
        )
        assert left.all_agree()
        new_cluster = left.state.cluster_of(successor.name)
        assert new_cluster.uid == target.uid
        assert new_cluster.leader.name == successor.name
        # The tree's representative for that leaf follows the new leader.
        assert left.state.tree.nodes[new_cluster.leaf].rep_name == successor.name

    def test_partition_across_clusters(self, small_setup, established):
        proto, medium, result = established
        state = result.state
        gone = (state.clusters[0].members[-1], state.clusters[-1].members[-1])
        split = proto.apply_event(
            state, PartitionEvent(leaving=gone), medium=medium, seed=4
        )
        assert split.all_agree()
        assert split.state.size == state.size - 2
        for identity in gone:
            assert identity.name not in split.state.parties

    def test_merge_appends_new_clusters(self, small_setup, established):
        proto, medium, result = established
        old_key = result.group_key
        incoming = tuple(_members("inc", 4))
        merged = proto.apply_event(
            result.state, MergeEvent(other_group=incoming), medium=medium, seed=5
        )
        assert merged.all_agree()
        assert merged.state.size == result.state.size + 4
        for identity in incoming:
            assert identity.name in merged.state.parties
        assert merged.group_key != old_key

    def test_chained_events_keep_agreement_and_fresh_keys(self, small_setup, established):
        proto, medium, result = established
        state, keys = result.state, {result.group_key}
        events = [
            JoinEvent(joining=Identity("chain-a")),
            LeaveEvent(leaving=state.clusters[1].members[1]),
            MergeEvent(other_group=tuple(_members("chain-m", 3))),
            PartitionEvent(leaving=(state.clusters[0].members[1],)),
            JoinEvent(joining=Identity("chain-b")),
        ]
        for index, event in enumerate(events):
            outcome = proto.apply_event(state, event, medium=medium, seed=index)
            assert outcome.all_agree()
            state = outcome.state
            keys.add(outcome.group_key)
        assert len(keys) == len(events) + 1

    def test_single_member_cluster_is_folded(self, small_setup, protocol):
        proto, medium, result = _establish(
            small_setup, protocol, 4, seed="fold", cluster_size=2
        )
        assert result.state.cluster_sizes() == [2, 2]
        left = proto.apply_event(
            result.state,
            LeaveEvent(leaving=result.state.clusters[1].members[1]),
            medium=medium,
            seed=6,
        )
        assert left.all_agree()
        assert left.state.cluster_sizes() == [3]
        assert len(left.state.tree.nodes) == 1  # single-leaf tree

    def test_oversized_cluster_splits_on_join(self, small_setup, protocol):
        proto, medium, result = _establish(
            small_setup, protocol, 4, seed="split", cluster_size=2
        )
        # Pin the target on the instance too — events recompute it from
        # ``self.cluster_size``, and the split threshold is ``2 * target``.
        proto.cluster_size = 2
        state = result.state
        for index in range(5):
            outcome = proto.apply_event(
                state,
                JoinEvent(joining=Identity(f"split-{index}")),
                medium=medium,
                seed=index,
            )
            assert outcome.all_agree()
            state = outcome.state
        assert state.size == 9
        assert len(state.clusters) >= 3
        assert all(c.size <= 4 for c in state.clusters)  # 2 * cluster_size

    def test_rekey_traffic_is_localized(self, small_setup, protocol):
        proto, medium, result = _establish(small_setup, protocol, 25, seed="local")
        mark = medium.total_messages()
        leaving = result.state.clusters[-1].members[-1]
        left = proto.apply_event(
            result.state, LeaveEvent(leaving=leaving), medium=medium, seed=7
        )
        assert left.all_agree()
        rekey_messages = medium.total_messages() - mark
        # Flat BD re-execution sends 2n messages (two full rounds) before
        # signatures; the cluster rekey touches one sub-ring plus the tree
        # path, far below half of that.
        assert rekey_messages < left.state.size

    def test_flat_foreign_state_is_reclustered(self, small_setup, protocol):
        flat = create_protocol("bd-unauthenticated", small_setup).run(
            _members("flat", 6), seed="flat"
        )
        proto = create_protocol(protocol, small_setup)
        adopted = proto.apply_event(flat.state, JoinEvent(joining=Identity("flat-new")))
        assert adopted.all_agree()
        assert isinstance(adopted.state, ClusterState)
        assert adopted.state.size == 7

    def test_event_cannot_empty_the_group(self, small_setup, protocol):
        proto, medium, result = _establish(small_setup, protocol, 4, seed="drain")
        with pytest.raises(ParameterError):
            proto.apply_event(
                result.state,
                PartitionEvent(leaving=tuple(result.state.members[1:])),
                medium=medium,
            )


# ---------------------------------------------------------------------------
# Scenario oracles and attacks
# ---------------------------------------------------------------------------

def _attack_scenario(adversary=None, **overrides):
    options = dict(
        name="cluster-attack",
        initial_size=8,
        schedule=TraceReplay(
            events=(
                LeaveEvent(leaving=Identity("member-005")),
                JoinEvent(joining=Identity("member-new")),
            )
        ),
        seed=11,
        adversary=adversary,
    )
    options.update(overrides)
    return Scenario(**options)


@pytest.mark.parametrize("protocol", CLUSTER_PROTOCOLS)
class TestClusterSecurity:
    def test_churn_keeps_all_oracles_green(self, small_setup, protocol):
        scenario = Scenario(
            name="cluster-churn",
            initial_size=6,
            schedule=PoissonChurn(length=6, join_rate=2.0, leave_rate=2.0),
            seed=5,
            loss_probability=0.1,
        )
        report = ScenarioRunner(small_setup, check_agreement=False).run(protocol, scenario)
        assert report.agreed_throughout
        outcomes = report.oracle_outcomes()
        assert outcomes["key-consistency"] is True
        assert outcomes["forward-secrecy"] is True
        assert outcomes["backward-secrecy"] is True

    def test_eavesdropper_scores_clean(self, small_setup, protocol):
        report = ScenarioRunner(small_setup, check_agreement=False).run(
            protocol, _attack_scenario(AdversaryConfig.preset("eavesdrop"))
        )
        assert report.security_verdict == "clean"
        assert report.oracle_outcomes()["implicit-key-auth"] is True

    def test_injection_is_detected_via_key_confirmation(self, small_setup, protocol):
        # Flat unauthenticated BD breaks *silently* under this attacker; the
        # tree's confirmation round turns the same forgery into a detected
        # abort even for the unauthenticated sub-protocol.
        report = ScenarioRunner(small_setup, check_agreement=False).run(
            protocol, _attack_scenario(AdversaryConfig.preset("inject"))
        )
        assert report.security_verdict == "detected"
        assert report.attacks_detected
        assert report.aborted


class TestClusterAttackMatrix:
    def test_matrix_row_for_cluster_bd(self, small_setup):
        matrix = run_attack_matrix(
            small_setup,
            protocols=["cluster-tree[bd]", "bd-unauthenticated"],
            attackers={
                "baseline": None,
                "eavesdrop": AdversaryConfig.preset("eavesdrop"),
                "inject": AdversaryConfig.preset("inject"),
            },
            scenario=_attack_scenario(),
        )
        assert matrix.verdict("cluster-tree[bd]", "baseline") == "clean"
        assert matrix.verdict("cluster-tree[bd]", "eavesdrop") == "clean"
        # The hierarchical wrapper upgrades unauthenticated BD from silently
        # broken to detected — the matrix shows both cells side by side.
        assert matrix.verdict("cluster-tree[bd]", "inject") == "detected"
        assert matrix.verdict("bd-unauthenticated", "inject") == "broken"
