"""The virtual-time engine: kernel ordering, latency models, loss recovery,
and kernel determinism (same seed ⇒ identical virtual-time traces)."""

from __future__ import annotations

import pytest

from repro.core import SystemSetup
from repro.core.registry import available_protocols, create_protocol
from repro.energy import RADIO_100KBPS, WLAN_SPECTRUM24
from repro.engine import (
    EngineConfig,
    EventKernel,
    FixedLatency,
    TransceiverLatency,
)
from repro.exceptions import ParameterError, ProtocolError
from repro.mathutils.rand import DeterministicRNG
from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.network.events import JoinEvent, LeaveEvent
from repro.network.medium import BroadcastMedium
from repro.network.message import Message, MessagePart
from repro.network.node import Node
from repro.pki import Identity
from repro.sim import Scenario, ScenarioRunner, comparison_table


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------

class TestEventKernel:
    def test_time_rank_order_seq_ordering(self):
        kernel = EventKernel()
        log = []
        kernel.schedule(lambda: log.append("late"), delay=1.0)
        kernel.schedule(lambda: log.append("hook-b"), rank=EventKernel.RANK_HOOK, order=2)
        kernel.schedule(lambda: log.append("hook-a"), rank=EventKernel.RANK_HOOK, order=1)
        kernel.schedule(lambda: log.append("delivery"), rank=EventKernel.RANK_DELIVERY)
        kernel.run()
        assert log == ["delivery", "hook-a", "hook-b", "late"]
        assert kernel.now == 1.0
        assert kernel.events_processed == 4

    def test_batch_barrier_within_instant(self):
        # Events scheduled *during* a batch run in the next batch, even at the
        # same virtual time — the synchronized-round barrier.
        kernel = EventKernel()
        log = []
        def first():
            log.append("first")
            kernel.schedule(lambda: log.append("reaction"))
        kernel.schedule(first)
        kernel.schedule(lambda: log.append("second"))
        kernel.run()
        assert log == ["first", "second", "reaction"]

    def test_cannot_schedule_in_past(self):
        with pytest.raises(ParameterError):
            EventKernel().schedule(lambda: None, delay=-0.1)

    def test_advance_moves_clock_forward_only(self):
        kernel = EventKernel()
        kernel.advance(2.5)
        assert kernel.now == 2.5
        with pytest.raises(ParameterError):
            kernel.advance(-1.0)


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------

class TestLatencyModels:
    def test_fixed_latency_scales_with_hops(self):
        model = FixedLatency(0.02)
        assert model.tx_time_s(10_000) == 0.0
        assert model.delivery_delay_s(10_000, hops=1, distance_m=0.0) == pytest.approx(0.02)
        assert model.delivery_delay_s(10_000, hops=3, distance_m=0.0) == pytest.approx(0.06)

    def test_transceiver_latency_serialization(self):
        model = TransceiverLatency(RADIO_100KBPS, per_hop_overhead_s=0.001)
        # 100 kbps: 1000 bits take 10 ms on air.
        assert model.tx_time_s(1000) == pytest.approx(0.010)
        # 3 hops: two relay re-serializations plus their overhead.
        assert model.delivery_delay_s(1000, hops=3, distance_m=0.0) == pytest.approx(0.022)

    def test_wlan_is_faster_than_sensor_radio(self):
        sensor = TransceiverLatency(RADIO_100KBPS)
        wlan = TransceiverLatency(WLAN_SPECTRUM24)
        assert wlan.tx_time_s(10_000) < sensor.tx_time_s(10_000)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ParameterError):
            FixedLatency(-0.1)
        with pytest.raises(ParameterError):
            TransceiverLatency(RADIO_100KBPS, per_hop_overhead_s=-1.0)


# ---------------------------------------------------------------------------
# Single-attempt medium transmit
# ---------------------------------------------------------------------------

class TestMediumTransmit:
    def _message(self, sender, bits=800):
        return Message.broadcast(sender, "r1", [MessagePart("payload", b"x", bits)])

    def test_lossless_transmit_delivers_everyone(self):
        medium = BroadcastMedium()
        alice, bob, carol = Identity("alice"), Identity("bob"), Identity("carol")
        for identity in (alice, bob, carol):
            medium.attach(Node(identity))
        receipt = medium.transmit(self._message(alice))
        assert {i.name for i in receipt.delivered_to} == {"bob", "carol"}
        assert receipt.attempts == 1 and receipt.transmissions == 1

    def test_lossy_transmit_never_retries(self):
        medium = BroadcastMedium(
            loss_probability=0.99, rng=DeterministicRNG("drop", label="loss")
        )
        alice, bob = Identity("alice"), Identity("bob")
        medium.attach(Node(alice))
        receiver = medium.attach(Node(bob))
        receipt = medium.transmit(self._message(alice))
        # One physical attempt, no NetworkError, loss shows as non-delivery.
        assert receipt.attempts == 1
        assert receipt.delivered_to == []
        # The receiver was listening and is charged the reception anyway.
        assert receiver.recorder.rx_bits == 800


# ---------------------------------------------------------------------------
# Protocol runs under latency
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def engine_setup():
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


class TestLatencyExecution:
    def test_lossless_run_accumulates_virtual_time(self, engine_setup):
        members = [Identity(f"lat-{i}") for i in range(5)]
        config = EngineConfig(latency=TransceiverLatency(RADIO_100KBPS))
        result = create_protocol("proposed-gka", engine_setup).run(
            members, seed=1, engine=config
        )
        assert result.all_agree()
        assert result.sim_latency_s > 0.0
        assert result.timeouts == 0
        # 2n messages of ~2.1 kbit on a 100 kbps channel: tens of milliseconds.
        assert 0.01 < result.sim_latency_s < 1.0

    def test_instant_mode_reports_zero_latency(self, engine_setup):
        members = [Identity(f"ins-{i}") for i in range(4)]
        result = create_protocol("proposed-gka", engine_setup).run(members, seed=2)
        assert result.sim_latency_s == 0.0 and result.timeouts == 0

    @pytest.mark.parametrize("protocol_name", sorted(available_protocols()))
    def test_every_protocol_agrees_under_latency(self, engine_setup, protocol_name):
        members = [Identity(f"all-{protocol_name}-{i}") for i in range(4)]
        config = EngineConfig(latency=FixedLatency(0.01))
        result = create_protocol(protocol_name, engine_setup).run(
            members, seed=3, engine=config
        )
        assert result.all_agree()
        assert result.sim_latency_s > 0.0

    def test_losses_surface_as_timeouts_and_retransmissions(self, engine_setup):
        members = [Identity(f"loss-{i}") for i in range(5)]
        medium = BroadcastMedium(
            loss_probability=0.3, rng=DeterministicRNG("engine-loss", label="medium")
        )
        config = EngineConfig(latency=FixedLatency(0.01), round_timeout_s=0.5)
        result = create_protocol("proposed-gka", engine_setup).run(
            members, medium=medium, seed=4, engine=config
        )
        assert result.all_agree()
        assert result.timeouts > 0
        # Timeout waves advanced the virtual clock past the pure link delay...
        assert result.sim_latency_s > 0.5
        # ...and the recovery retransmissions are visible on the transcript.
        assert medium.total_messages() > 2 * len(members)

    def test_timeout_budget_exhaustion_raises(self, engine_setup):
        members = [Identity(f"dead-{i}") for i in range(4)]
        medium = BroadcastMedium(
            loss_probability=0.97, rng=DeterministicRNG("dead", label="medium"), max_retries=1
        )
        config = EngineConfig(
            latency=FixedLatency(0.01), round_timeout_s=0.5, max_timeout_waves=3
        )
        with pytest.raises(ProtocolError, match="timeout retransmission waves"):
            create_protocol("bd", engine_setup).run(members, medium=medium, seed=5, engine=config)

    def test_dynamic_events_run_on_the_kernel_clock(self, engine_setup):
        members = [Identity(f"dyn-{i}") for i in range(5)]
        config = EngineConfig(latency=TransceiverLatency(WLAN_SPECTRUM24))
        protocol = create_protocol("proposed-gka", engine_setup)
        state = protocol.run(members, seed=6, engine=config).state
        joined = protocol.apply_event(
            state, JoinEvent(joining=Identity("dyn-new")), seed=7, engine=config
        )
        assert joined.all_agree() and joined.sim_latency_s > 0.0
        left = protocol.apply_event(
            joined.state, LeaveEvent(leaving=members[2]), seed=8, engine=config
        )
        assert left.all_agree() and left.sim_latency_s > 0.0
        # Join touches three nodes' radios; the full GKA serializes 2n
        # broadcasts — the dedicated protocols must be faster in virtual time.
        establishment = protocol.run(
            [Identity(f"dyn2-{i}") for i in range(6)], seed=9, engine=config
        )
        assert joined.sim_latency_s < establishment.sim_latency_s


# ---------------------------------------------------------------------------
# Determinism (acceptance criterion)
# ---------------------------------------------------------------------------

class TestKernelDeterminism:
    def _lossy_run(self, setup, seed):
        medium = BroadcastMedium(
            loss_probability=0.25, rng=DeterministicRNG(seed, label="medium")
        )
        config = EngineConfig(latency=FixedLatency(0.02), round_timeout_s=0.5)
        return create_protocol("proposed-gka", setup).run(
            [Identity(f"det-{i}") for i in range(5)], medium=medium, seed=seed, engine=config
        )

    def test_same_seed_identical_trace(self, engine_setup):
        a = self._lossy_run(engine_setup, "trace")
        b = self._lossy_run(engine_setup, "trace")
        assert a.group_key == b.group_key
        assert a.sim_latency_s == b.sim_latency_s
        assert a.timeouts == b.timeouts
        assert [(m.sender.name, m.round_label) for m in a.medium.transcript] == [
            (m.sender.name, m.round_label) for m in b.medium.transcript
        ]
        assert {
            name: rec.snapshot() for name, rec in a.state.recorders().items()
        } == {name: rec.snapshot() for name, rec in b.state.recorders().items()}

    def test_different_seed_different_trace(self, engine_setup):
        a = self._lossy_run(engine_setup, "trace-a")
        b = self._lossy_run(engine_setup, "trace-b")
        assert a.group_key != b.group_key

    def test_scenario_runner_determinism_with_engine(self, engine_setup):
        scenario = Scenario(
            name="engine-det",
            initial_size=8,
            mobility=MobilityConfig(
                model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
                area=Area(400.0, 400.0),
                tx_range=220.0,
                duration=40.0,
                tick=2.0,
                edge_loss=0.1,
                settle_ticks=2,
            ),
            seed="det-run",
        )
        def run():
            runner = ScenarioRunner(
                engine_setup,
                engine=EngineConfig(
                    latency=TransceiverLatency(WLAN_SPECTRUM24), round_timeout_s=0.5
                ),
            )
            return runner.run("proposed", scenario.with_seed("det-run"))

        first, second = run(), run()
        assert [r.sim_latency_s for r in first.records] == [
            r.sim_latency_s for r in second.records
        ]
        assert [r.timeouts for r in first.records] == [r.timeouts for r in second.records]
        assert first.per_member_energy_j() == second.per_member_energy_j()


# ---------------------------------------------------------------------------
# Reporting integration
# ---------------------------------------------------------------------------

class TestVirtualTimeReporting:
    @pytest.fixture(scope="class")
    def engine_reports(self, engine_setup):
        scenario = Scenario(name="vt", initial_size=6, seed=21, loss_probability=0.05)
        runner = ScenarioRunner(
            engine_setup,
            engine=EngineConfig(latency=TransceiverLatency(RADIO_100KBPS), round_timeout_s=1.0),
        )
        return [runner.run(name, scenario) for name in ("proposed", "bd")]

    def test_records_carry_sim_latency(self, engine_reports):
        for report in engine_reports:
            assert report.total_sim_latency_s > 0.0
            assert all(r.sim_latency_s > 0.0 for r in report.records)

    def test_comparison_table_gains_virtual_time_columns(self, engine_reports):
        table = comparison_table(engine_reports)
        assert "sim s" in table and "t/o" in table

    def test_instant_reports_hide_virtual_time_columns(self, engine_setup):
        scenario = Scenario(name="vt0", initial_size=4, seed=22)
        runner = ScenarioRunner(engine_setup)
        table = comparison_table([runner.run("bd", scenario)])
        assert "sim s" not in table

    def test_csv_and_json_carry_the_columns(self, engine_reports):
        report = engine_reports[0]
        header = report.to_csv().splitlines()[0]
        assert "sim_latency_s" in header and "timeouts" in header
        import json as _json

        payload = _json.loads(report.to_json())
        assert payload["totals"]["sim_latency_s"] == pytest.approx(
            report.total_sim_latency_s
        )
        assert payload["totals"]["timeouts"] == report.total_timeouts
