"""Multi-tier link classes and Gilbert–Elliott burst loss.

Covers the burst-loss chain mathematics and determinism, link-class /
tier-map resolution, gateway-mediated cross-tier flooding, the tiered
latency model, spec round-trips, the campaign ``tiers`` axis — and the
acceptance bar that every degenerate configuration stays bit-identical to
the pre-tier uniform-loss paths.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import NetworkError, ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.network.medium import BroadcastMedium, UniformLink
from repro.network.message import Message, MessagePart
from repro.network.node import Node
from repro.network.tiers import (
    LINK_CLASSES,
    GilbertElliott,
    GilbertElliottLink,
    LinkClass,
    TierConfig,
    TieredLink,
    TierMap,
    link_class_to_spec,
    resolve_link_class,
)
from repro.mobility.tiered import TieredMedium
from repro.pki import Identity


def _names(count: int):
    return [f"member-{i:03d}" for i in range(count)]


def _record_dicts(report):
    """Per-event record dicts minus ``wall_seconds`` (real host time)."""
    rows = [dataclasses.asdict(r) for r in report.records]
    for row in rows:
        row.pop("wall_seconds")
    return rows


def _message(sender: Identity, label: str = "r1", bits: int = 800) -> Message:
    return Message.broadcast(sender, label, [MessagePart("payload", b"x", bits)])


# --------------------------------------------------------------- GE parameters
class TestGilbertElliottParameters:
    def test_validation(self):
        with pytest.raises(ParameterError):
            GilbertElliott(loss_good=1.0)
        with pytest.raises(ParameterError):
            GilbertElliott(loss_bad=1.5)
        with pytest.raises(ParameterError):
            GilbertElliott(p_enter_bad=1.0)
        with pytest.raises(ParameterError):
            GilbertElliott(burst_length=0.5)

    def test_from_loss_rate_hits_the_stationary_target(self):
        params = GilbertElliott.from_loss_rate(0.08, 5.0)
        assert params.iid_loss == pytest.approx(0.08)
        assert params.p_exit_bad == pytest.approx(0.2)
        assert not params.is_iid
        # Mean bad-spell length is the configured burst length.
        assert 1.0 / params.p_exit_bad == pytest.approx(5.0)

    def test_from_loss_rate_rejects_impossible_targets(self):
        with pytest.raises(ParameterError):
            GilbertElliott.from_loss_rate(0.5, 5.0, loss_good=0.6, loss_bad=0.9)
        with pytest.raises(ParameterError):
            GilbertElliott.from_loss_rate(0.2, 5.0, loss_good=0.3, loss_bad=0.2)

    @pytest.mark.parametrize(
        "params",
        [
            GilbertElliott.iid(0.3),
            GilbertElliott(p_enter_bad=0.0),  # never leaves good
            GilbertElliott(loss_good=0.2, loss_bad=0.2, p_enter_bad=0.1),
            GilbertElliott.from_loss_rate(0.1, 1.0),  # memoryless boundary
        ],
    )
    def test_degenerate_parameter_sets_are_iid(self, params):
        assert params.is_iid

    def test_iid_equivalent_rate(self):
        assert GilbertElliott.iid(0.3).iid_loss == pytest.approx(0.3)
        assert GilbertElliott(p_enter_bad=0.0).iid_loss == 0.0

    def test_spec_round_trip(self):
        params = GilbertElliott.from_loss_rate(0.08, 5.0)
        assert GilbertElliott.from_spec(params.to_spec()) == params

    def test_spec_shorthand(self):
        params = GilbertElliott.from_spec({"loss": 0.08, "burst_length": 5.0})
        assert params == GilbertElliott.from_loss_rate(0.08, 5.0)
        with pytest.raises(ParameterError):
            GilbertElliott.from_spec({"loss": 0.08, "bogus": 1})
        with pytest.raises(ParameterError):
            GilbertElliott.from_spec({"loss_goood": 0.1})


# ------------------------------------------------------------------ GE chains
class TestGilbertElliottChains:
    def _sequence(self, seed, copies: int = 400):
        link = GilbertElliottLink(
            GilbertElliott.from_loss_rate(0.2, 8.0),
            rng=DeterministicRNG(seed, label="links"),
        )
        return [link.loss_probability("a", "b") for _ in range(copies)]

    def test_same_seed_same_chain(self):
        assert self._sequence("chain") == self._sequence("chain")
        assert self._sequence("chain") != self._sequence("other")

    def test_losses_come_in_bursts(self):
        seq = self._sequence("bursty", copies=2000)
        bad = [loss == 1.0 for loss in seq]
        assert any(bad) and not all(bad)
        # Mean loss near the stationary target...
        assert sum(bad) / len(bad) == pytest.approx(0.2, abs=0.05)
        # ...and clustered: consecutive bad copies far outnumber what an
        # i.i.d. process at the same rate would produce (0.2^2 = 4%).
        pairs = sum(1 for i in range(len(bad) - 1) if bad[i] and bad[i + 1])
        assert pairs / (len(bad) - 1) > 0.10

    def test_chains_are_per_directed_link(self):
        link = GilbertElliottLink(
            GilbertElliott.from_loss_rate(0.3, 4.0),
            rng=DeterministicRNG("directed", label="links"),
        )
        for _ in range(50):
            link.loss_probability("a", "b")
            link.loss_probability("b", "a")
        assert set(link.chain_states()) == {("a", "b"), ("b", "a")}

    def test_degenerate_parameters_never_draw(self):
        # No RNG supplied and never bound: a chain step would raise, the
        # i.i.d. fast path never needs one.
        link = GilbertElliottLink(GilbertElliott.iid(0.3))
        assert link.loss_probability("a", "b") == pytest.approx(0.3)
        assert link.chain_states() == {}

    def test_unbound_bursty_link_raises(self):
        link = GilbertElliottLink(GilbertElliott.from_loss_rate(0.2, 5.0))
        with pytest.raises(NetworkError, match="burst-loss chains need randomness"):
            link.loss_probability("a", "b")

    def test_compounds_with_inner_model(self):
        inner = UniformLink(0.5)
        link = GilbertElliottLink(GilbertElliott.iid(0.5), inner=inner)
        assert link.loss_probability("a", "b") == pytest.approx(0.75)

    def test_medium_bind_does_not_perturb_loss_draws(self):
        # Attaching a (degenerate) GE link model must leave the medium's own
        # draw stream untouched: same seed, same receipts as the plain knob.
        def run(link_model):
            medium = BroadcastMedium(
                loss_probability=0.4 if link_model is None else 0.0,
                max_retries=50,
                rng=DeterministicRNG("bind", label="medium"),
                link_model=link_model,
            )
            if link_model is not None:
                medium.loss_probability = 0.4  # same knob, explicit model
            alice, bob = Identity("alice"), Identity("bob")
            medium.attach(Node(alice))
            medium.attach(Node(bob))
            for index in range(30):
                medium.send(_message(alice, bits=800 + index))
            return [receipt.attempts for receipt in medium.receipts]

        assert run(None) == run(GilbertElliottLink(GilbertElliott.iid(0.0)))


# ------------------------------------------------------------------ link class
class TestLinkClass:
    def test_validation(self):
        with pytest.raises(ParameterError):
            LinkClass("x", bitrate_bps=0.0)
        with pytest.raises(ParameterError):
            LinkClass("x", bitrate_bps=1e6, reverse_bps=-1.0)
        with pytest.raises(ParameterError):
            LinkClass("x", bitrate_bps=1e6, propagation_delay_s=-0.1)
        with pytest.raises(ParameterError):
            LinkClass("x", bitrate_bps=1e6, loss=1.0)
        with pytest.raises(ParameterError):
            LinkClass("x", bitrate_bps=1e6, loss="lossy")

    def test_asymmetric_rates(self):
        sat = LINK_CLASSES["satellite"]
        assert sat.rate_bps() == pytest.approx(1_000_000.0)
        assert sat.rate_bps(descending=True) == pytest.approx(10_000_000.0)
        ground = LINK_CLASSES["ground"]
        assert ground.rate_bps(descending=True) == ground.rate_bps()

    def test_iid_loss_none_when_genuinely_bursty(self):
        assert LINK_CLASSES["satellite-bursty"].iid_loss is None
        assert LINK_CLASSES["ground"].iid_loss == 0.0
        iid = LinkClass("x", bitrate_bps=1e6, loss=GilbertElliott.iid(0.2))
        assert iid.iid_loss == pytest.approx(0.2)

    def test_resolve_preset_dict_instance(self):
        assert resolve_link_class("ground") is LINK_CLASSES["ground"]
        built = resolve_link_class(
            {"name": "lan", "bitrate_bps": 1e8, "loss": {"loss": 0.1, "burst_length": 3.0}}
        )
        assert isinstance(built.loss, GilbertElliott)
        assert built.loss.iid_loss == pytest.approx(0.1)
        assert resolve_link_class(built) is built
        with pytest.raises(ParameterError):
            resolve_link_class("fibre-to-the-moon")
        with pytest.raises(ParameterError):
            resolve_link_class({"name": "x", "bitrate_bps": 1e6, "colour": "red"})

    def test_spec_round_trip_collapses_presets(self):
        for name, cls in LINK_CLASSES.items():
            assert link_class_to_spec(cls) == name
            assert resolve_link_class(link_class_to_spec(cls)) == cls
        custom = LinkClass("lan", bitrate_bps=1e8, propagation_delay_s=0.002, loss=0.05)
        assert resolve_link_class(link_class_to_spec(custom)) == custom


# -------------------------------------------------------------------- tier map
def _two_tier_map(size: int = 6, sat_members: int = 1, gateway_count: int = 1):
    return TierConfig(
        tiers={"ground": "ground", "sat": "satellite"},
        members={"sat": sat_members},
        gateways={"ground:sat": gateway_count},
    ).build_map(_names(size))


class TestTierMap:
    def test_assignment_fills_non_default_tiers_from_the_end(self):
        tm = _two_tier_map(size=6, sat_members=2)
        assert tm.home_tier("member-000") == "ground"
        assert tm.home_tier("member-004") == "sat"
        assert tm.home_tier("member-005") == "sat"

    def test_gateways_are_the_first_nodes_of_the_home_tier(self):
        # The controller, whom schedule churn never removes, anchors the
        # bridge — random partitions cannot strand the upper tier.
        tm = _two_tier_map()
        assert tm.gateways() == ["member-000"]
        assert tm.tiers_of("member-000") == ("ground", "sat")
        assert tm.is_gateway("member-000")
        assert not tm.is_gateway("member-001")

    def test_churn_arrivals_land_in_the_default_tier(self):
        tm = _two_tier_map()
        assert tm.home_tier("member-999") == "ground"
        assert tm.tiers_of("member-999") == ("ground",)

    def test_link_class_resolution(self):
        tm = _two_tier_map()
        assert tm.link_class("member-001", "member-002").name == "ground"
        # Gateway–satellite pairs share the sat tier.
        assert tm.link_class("member-000", "member-005").name == "satellite"
        # Plain ground members have no direct link to the satellite node.
        assert tm.link_class("member-001", "member-005") is None

    def test_overrides_win(self):
        cfg = TierConfig(
            tiers={"ground": "ground", "sat": "satellite"},
            members={"sat": 1},
            overrides={"member-001|member-005": "aerial"},
        )
        tm = cfg.build_map(_names(6))
        assert tm.link_class("member-001", "member-005").name == "aerial"
        assert tm.link_class("member-005", "member-001").name == "aerial"

    def test_latency_terms(self):
        tm = _two_tier_map()
        # Ground to ground: the shared ground class, same tier.
        rate, prop, cross = tm.latency_terms("member-001", "member-002")
        assert (rate, prop, cross) == (2_000_000.0, 0.001, False)
        # Gateway up to the satellite: uplink rate, 250 ms, cross-tier.
        rate, prop, cross = tm.latency_terms("member-000", "member-005")
        assert (rate, prop, cross) == (1_000_000.0, 0.25, True)
        # Satellite down to the gateway: the fast downlink.
        rate, prop, cross = tm.latency_terms("member-005", "member-000")
        assert (rate, prop, cross) == (10_000_000.0, 0.25, True)
        # Disjoint pair: slower home class, both propagation delays.
        rate, prop, cross = tm.latency_terms("member-001", "member-005")
        assert (rate, prop, cross) == (1_000_000.0, 0.251, True)

    def test_unknown_tier_references_rejected(self):
        with pytest.raises(ParameterError):
            TierMap({"ground": LINK_CLASSES["ground"]}, {"a": "sky"})
        with pytest.raises(ParameterError):
            TierMap({"ground": LINK_CLASSES["ground"]}, {}, extra={"a": ("sky",)})


# ----------------------------------------------------------------- tier config
class TestTierConfig:
    def test_default_tier_cannot_be_sized(self):
        with pytest.raises(ParameterError, match="default tier"):
            TierConfig(tiers={"ground": "ground", "sat": "satellite"}, members={"ground": 3})

    def test_non_default_tier_cannot_absorb_everyone(self):
        cfg = TierConfig(tiers={"ground": "ground", "sat": "satellite"}, members={"sat": 6})
        with pytest.raises(ParameterError, match="default tier cannot be empty"):
            cfg.build_map(_names(6))

    def test_gateway_key_and_count_validation(self):
        with pytest.raises(ParameterError, match="tierA:tierB"):
            TierConfig(tiers={"g": "ground"}, gateways={"g": 1})
        with pytest.raises(ParameterError, match="distinct"):
            TierConfig(tiers={"g": "ground"}, gateways={"g:g": 1})
        with pytest.raises(ParameterError, match="unknown tier"):
            TierConfig(tiers={"g": "ground"}, gateways={"g:sky": 1})

    def test_degenerate_loss(self):
        flat = TierConfig(tiers=[("lan", {"name": "lan", "bitrate_bps": 1e6, "loss": 0.25})])
        assert flat.degenerate_loss == pytest.approx(0.25)
        multi = TierConfig(tiers={"ground": "ground", "sat": "satellite"})
        assert multi.degenerate_loss is None
        bursty = TierConfig(tiers={"sat": "satellite-bursty"})
        assert bursty.degenerate_loss is None

    def test_loss_floor_spares_bursty_classes(self):
        cfg = TierConfig(
            tiers={"ground": "ground", "sat": "satellite-bursty"},
            loss_floor=0.1,
        )
        by_name = dict(cfg.tiers)
        assert by_name["ground"].loss == pytest.approx(0.1)
        # The GE class already models loss; the floor leaves it alone.
        assert isinstance(by_name["sat"].loss, GilbertElliott)
        assert by_name["sat"].loss == LINK_CLASSES["satellite-bursty"].loss

    def test_spec_round_trip(self):
        cfg = TierConfig(
            tiers={"ground": "ground", "sat": "satellite-bursty"},
            members={"sat": 2},
            gateways={"ground:sat": 1},
            overrides={"member-001|member-004": "aerial"},
            max_hops=3,
            loss_floor=0.05,
        )
        from repro.sim.specio import build_tiers, tiers_to_spec

        assert build_tiers(cfg.to_spec()) == cfg
        assert build_tiers(tiers_to_spec(cfg)) == cfg
        assert tiers_to_spec(None) is None
        assert build_tiers(None) is None


# --------------------------------------------------------------- tiered medium
def _tiered_medium(cfg: TierConfig, size: int, seed="tiered"):
    tier_map = cfg.build_map(_names(size))
    medium = TieredMedium(
        tier_map,
        max_hops=cfg.max_hops,
        rng=DeterministicRNG(seed, label="medium"),
    )
    identities = [Identity(name) for name in _names(size)]
    for identity in identities:
        medium.attach(Node(identity))
    return medium, identities


class TestTieredMedium:
    CFG = TierConfig(
        tiers={"ground": "ground", "sat": "satellite"},
        members={"sat": 1},
        gateways={"ground:sat": 1},
    )

    def test_cross_tier_flood_goes_through_the_gateway(self):
        medium, identities = _tiered_medium(self.CFG, 4)
        receipt = medium.send(_message(identities[1]))
        names = {identity.name for identity in receipt.delivered_to}
        assert "member-003" in names  # the satellite node, two hops away
        assert receipt.hops == 2

    def test_no_gateway_means_no_cross_tier_path(self):
        cfg = TierConfig(tiers={"ground": "ground", "sat": "satellite"}, members={"sat": 1})
        medium, identities = _tiered_medium(cfg, 4)
        with pytest.raises(NetworkError, match="no relay path"):
            medium.send(_message(identities[1]))
        # The engine's single-attempt primitive does not raise: the stranded
        # node simply stays undelivered (timeout waves are the recovery).
        receipt = medium.transmit(_message(identities[2], label="r2"))
        assert "member-003" not in {i.name for i in receipt.delivered_to}

    def test_chain_state_survives_churn(self):
        cfg = TierConfig(
            tiers=[("sat", "satellite-bursty")],
            max_hops=1,
        )
        # Single bursty tier: run traffic, detach/re-attach a member, run
        # more; a paired run without churn must see the same chain states.
        def run(churn: bool):
            medium, identities = _tiered_medium(cfg, 3, seed="churn")
            for index in range(40):
                medium.transmit(_message(identities[0], label=f"a{index}"))
            if churn:
                medium.detach(identities[2])
                medium.attach(Node(identities[2]))
            for index in range(40):
                medium.transmit(_message(identities[0], label=f"b{index}"))
            return medium.link_model.chain_states()

        states = run(churn=False)
        assert states == run(churn=True)
        assert set(states) == {("member-000", "member-001"), ("member-000", "member-002")}

    def test_ge_iid_class_bit_identical_to_constant_loss_class(self):
        # The acceptance bar: a burst-length-1 (i.i.d.) Gilbert–Elliott class
        # must replay the exact receipts of a plain constant-loss class —
        # same seed, same draws, no chain randomness consumed.
        def run(loss):
            cfg = TierConfig(
                tiers=[("lan", {"name": "lan", "bitrate_bps": 1e6, "loss": loss})],
                max_hops=1,
            )
            medium, identities = _tiered_medium(cfg, 4, seed="iid-vs-const")
            receipts = [
                medium.transmit(_message(identities[0], label=f"m{index}"))
                for index in range(60)
            ]
            return [
                (sorted(i.name for i in r.delivered_to), r.transmissions) for r in receipts
            ]

        constant = run(0.3)
        ge_iid = run({"loss_good": 0.3, "loss_bad": 0.3, "p_enter_bad": 0.1})
        burst_one = run(
            {"loss_good": 0.0, "loss_bad": 1.0, "p_enter_bad": 0.3, "burst_length": 1.0}
        )
        assert constant == ge_iid
        # burst_length == 1 collapses to i.i.d. at the stationary rate: with
        # p_exit = 1 the stationary loss is p_enter/(p_enter+1)... so compare
        # against its own equivalent constant instead of 0.3.
        params = GilbertElliott(
            loss_good=0.0, loss_bad=1.0, p_enter_bad=0.3, burst_length=1.0
        )
        assert burst_one == run(params.iid_loss)


# ---------------------------------------------------------------- tiered latency
class TestTieredLatency:
    def test_binds_tier_map_from_medium(self):
        from repro.engine.latency import TieredLatency

        cfg = TestTieredMedium.CFG
        medium, _ = _tiered_medium(cfg, 4)
        latency = TieredLatency()
        latency.bind(medium)
        assert latency.tier_map is medium.tier_map

    def test_delays_reflect_link_classes(self):
        from repro.engine.latency import TieredLatency

        tm = _two_tier_map(size=6)
        latency = TieredLatency(tm, per_hop_overhead_s=0.0, propagation_m_per_s=float("inf"))
        bits = 1_000_000
        # The satellite node serializes its uplink at 1 Mbps — a full second;
        # ground members (the gateway included: tx happens on its *home*
        # class) ride the 2 Mbps ground channel.
        assert latency.tx_time_for(bits, "member-005") == pytest.approx(1.0)
        assert latency.tx_time_for(bits, "member-000") == pytest.approx(0.5)
        assert latency.tx_time_for(bits, "member-001") == pytest.approx(0.5)
        # Same-tier single hop: propagation only (tx time is charged apart).
        assert latency.delivery_delay_for(bits, 1, 0.0, "member-001", "member-002") == (
            pytest.approx(0.001)
        )
        # Cross-tier: one gateway re-serialization at the pair rate plus the
        # summed propagation of both home classes.
        delay = latency.delivery_delay_for(bits, 1, 0.0, "member-001", "member-005")
        assert delay == pytest.approx(1.0 + 0.251)
        # Descending deliveries ride the 10 Mbps downlink.
        delay_down = latency.delivery_delay_for(bits, 1, 0.0, "member-005", "member-000")
        assert delay_down == pytest.approx(0.1 + 0.25)

    def test_unbound_fallback_uses_ground_class(self):
        from repro.engine.latency import TieredLatency

        latency = TieredLatency(per_hop_overhead_s=0.0, propagation_m_per_s=float("inf"))
        assert latency.tx_time_for(2_000_000, "anyone") == pytest.approx(1.0)
        assert latency.delivery_delay_for(2_000_000, 1, 0.0, "a", "b") == pytest.approx(0.001)


# -------------------------------------------------------------- scenario layer
class TestTieredScenarios:
    def test_tiers_exclude_mobility_and_flat_loss(self):
        from repro.mobility import Area, MobilityConfig, StaticGrid
        from repro.sim import Scenario

        cfg = TierConfig(tiers={"ground": "ground"})
        with pytest.raises(ParameterError):
            Scenario(
                name="x",
                initial_size=4,
                tiers=cfg,
                mobility=MobilityConfig(
                    model=StaticGrid(), area=Area(100.0, 100.0), tx_range=50.0, duration=10.0
                ),
            )
        with pytest.raises(ParameterError, match="loss_floor"):
            Scenario(name="x", initial_size=4, tiers=cfg, loss_probability=0.2)

    def test_degenerate_single_tier_is_bit_identical_to_classic(self, small_setup):
        # A one-tier, gateway-free config with an i.i.d. loss knob IS the
        # classic flat domain — identical reports, fingerprints and ledgers.
        from repro.sim import Scenario, ScenarioRunner
        from repro.sim.scenarios import PoissonChurn

        def run(tiers, loss):
            scenario = Scenario(
                name="degenerate",
                initial_size=5,
                schedule=PoissonChurn(length=4),
                seed=77,
                loss_probability=loss,
                tiers=tiers,
            )
            return ScenarioRunner(small_setup).run("proposed", scenario)

        cfg = TierConfig(
            tiers=[("lan", {"name": "lan", "bitrate_bps": 2e6, "loss": 0.2})]
        )
        classic = run(None, 0.2)
        tiered = run(cfg, 0.0)
        assert tiered.key_fingerprint == classic.key_fingerprint
        assert _record_dicts(tiered) == _record_dicts(classic)

    def test_tiered_scenario_runs_end_to_end(self, small_setup):
        from repro.sim import Scenario, ScenarioRunner
        from repro.sim.scenarios import BurstPartitions
        from repro.sim.specio import build_engine

        cfg = TierConfig(
            tiers={"ground": "ground", "sat": "satellite-bursty"},
            members={"sat": 1},
            gateways={"ground:sat": 1},
        )
        scenario = Scenario(
            name="tier-burst",
            initial_size=6,
            schedule=BurstPartitions(bursts=2, burst_size=1, period=5.0),
            seed=11,
            tiers=cfg,
        )
        runner = ScenarioRunner(small_setup, engine=build_engine("tiered"))
        report = runner.run("proposed", scenario)
        assert report.final_size == 6
        establish = report.records[0]
        assert establish.agreed
        # The 250 ms satellite hop dominates: no flat-LAN round finishes
        # this slowly, so the latency model demonstrably saw the tier map.
        assert establish.sim_latency_s > 0.5

    def test_same_seed_reports_are_identical(self, small_setup):
        from repro.sim import Scenario, ScenarioRunner
        from repro.sim.scenarios import PoissonChurn
        from repro.sim.specio import build_engine

        cfg = TierConfig(
            tiers={"ground": "ground", "sat": "satellite-bursty"},
            members={"sat": 1},
            gateways={"ground:sat": 1},
        )

        def run():
            scenario = Scenario(
                name="tier-det",
                initial_size=5,
                schedule=PoissonChurn(length=3),
                seed=23,
                tiers=cfg,
            )
            runner = ScenarioRunner(small_setup, engine=build_engine("tiered"))
            report = runner.run("proposed", scenario)
            return report.key_fingerprint, _record_dicts(report)

        assert run() == run()

    def test_scenario_spec_round_trip(self):
        from repro.sim.specio import build_scenario, scenario_to_spec

        spec = {
            "name": "tiered-spec",
            "initial_size": 6,
            "schedule": {"kind": "poisson", "length": 3},
            "seed": 5,
            "tiers": {
                "tiers": [["ground", "ground"], ["sat", "satellite-bursty"]],
                "members": {"sat": 1},
                "gateways": {"ground:sat": 1},
            },
        }
        scenario = build_scenario(spec)
        assert scenario.tiers is not None
        assert build_scenario(scenario_to_spec(scenario)) == scenario

    def test_engine_spec_round_trip(self):
        from repro.engine.latency import TieredLatency
        from repro.sim.specio import build_engine, engine_to_spec

        config = build_engine("tiered")
        assert isinstance(config.latency, TieredLatency)
        assert engine_to_spec(config) == "tiered"
        with pytest.raises(ParameterError):
            engine_to_spec_explicit = TieredLatency(_two_tier_map())
            config_explicit = dataclasses.replace(config, latency=engine_to_spec_explicit)
            engine_to_spec(config_explicit)


# ------------------------------------------------------------------- campaign
class TestCampaignTiersAxis:
    def _spec(self, **kwargs):
        from repro.campaign.spec import CampaignSpec

        return CampaignSpec(
            name="tiers-campaign",
            protocols=("proposed",),
            group_sizes=(4,),
            schedule={"kind": "poisson", "length": 2},
            replications=1,
            **kwargs,
        )

    TIER_SPEC = {
        "tiers": [["ground", "ground"], ["sat", "satellite-bursty"]],
        "members": {"sat": 1},
        "gateways": {"ground:sat": 1},
    }

    def test_tiers_axis_expands_cells(self):
        spec = self._spec(tiers={"flat": None, "sat": self.TIER_SPEC})
        cells = spec.cells()
        assert len(cells) == 2
        by_tier = {cell.axes["tiers"]: cell for cell in cells}
        assert set(by_tier) == {"flat", "sat"}
        assert "tiers" not in by_tier["flat"].payload["scenario"]
        assert by_tier["sat"].payload["scenario"]["tiers"] == self.TIER_SPEC
        assert "tiers=sat" in by_tier["sat"].key

    def test_tiers_axis_does_not_shift_workload_seeds(self):
        from repro.campaign.spec import CampaignSpec

        flat = self._spec().cells()[0]
        tiered = self._spec(tiers={"sat": self.TIER_SPEC}).cells()[0]
        assert CampaignSpec.workload_key(flat.axes) == CampaignSpec.workload_key(tiered.axes)

    def test_loss_axis_folds_into_loss_floor(self):
        spec = self._spec(tiers={"sat": self.TIER_SPEC}, losses=(0.0, 0.1))
        cells = spec.cells()
        by_loss = {cell.axes["loss"]: cell for cell in cells}
        assert "loss_floor" not in by_loss[0.0].payload["scenario"]["tiers"]
        assert by_loss[0.1].payload["scenario"]["tiers"]["loss_floor"] == pytest.approx(0.1)
        for cell in cells:
            assert cell.payload["scenario"].get("loss_probability", 0.0) == 0.0

    def test_tiers_conflicts_with_mobility_axis(self):
        with pytest.raises(ParameterError):
            self._spec(
                tiers={"sat": self.TIER_SPEC},
                mobilities={
                    "rwp": {
                        "model": {"kind": "random-waypoint", "min_speed": 1.0, "max_speed": 2.0},
                        "area": [300.0, 300.0],
                        "tx_range": 120.0,
                        "duration": 60.0,
                    }
                },
            )


# ------------------------------------------------------- radio clamp regression
class TestRadioLinkClampRegression:
    def test_flat_profile_respects_the_loss_ceiling(self):
        from repro.mobility.field import Area, MobilityField
        from repro.mobility.models import StaticGrid
        from repro.mobility.radio import RadioLink

        # base == edge: the flat branch used to return base_loss unclamped.
        field = MobilityField(
            ["a", "b"],
            StaticGrid(),
            Area(10.0, 10.0),
            1.0,
            DeterministicRNG("clamp", label="field"),
        )
        link = RadioLink(field, tx_range=100.0, base_loss=0.9995, edge_loss=0.9995)
        assert link.loss_probability("a", "b") <= 0.999
