"""The adversary subsystem: attacker actors, oracles, runner wiring, matrix.

Covers the headline security results mechanically:

* the eavesdropper never derives the group key for any registry protocol;
* active injection silently breaks unauthenticated BD (key consistency fails
  with no detection) while the proposed GKA and the signed-BD baselines
  detect the attack or abort;
* a passive adversary attached to a run leaves it bit-identical (ledgers,
  traffic, keys) — overhearing is charged to the attacker's own node only;
* leave/partition machines recover under lossy media (the loss-path coverage
  the join/merge/rekey tests already had);
* randomized event chains keep the key-consistency oracle green for all nine
  protocols when nobody is attacking.
"""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.adversary import (
    ATTACKER_PRESETS,
    AdversaryConfig,
    AdversarySuite,
    Compromiser,
    Eavesdropper,
    Injector,
    ManInTheMiddle,
    OracleContext,
    Replayer,
    classify_report,
    evaluate_oracles,
    run_attack_matrix,
)
from repro.core.registry import available_protocols
from repro.engine import EngineConfig, FixedLatency
from repro.exceptions import ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.network.events import JoinEvent, LeaveEvent, PartitionEvent
from repro.network.medium import BroadcastMedium, DeliveryReceipt
from repro.network.message import Message, group_element_part, identity_part
from repro.pki import Identity
from repro.sim import (
    PoissonChurn,
    Scenario,
    ScenarioRunner,
    TraceReplay,
    comparison_csv,
    comparison_json,
    comparison_table,
)
from repro.sim.__main__ import main as sim_main

ALL_PROTOCOLS = available_protocols()


def _rng(label: str = "test") -> DeterministicRNG:
    return DeterministicRNG("adversary-tests", label=label)


def _message(sender: str = "member-000", label: str = "bd-round2", x: int = 12345) -> Message:
    return Message.broadcast(
        Identity(sender),
        label,
        [identity_part(Identity(sender)), group_element_part("X", x, 256)],
    )


def _receipt(message: Message) -> DeliveryReceipt:
    return DeliveryReceipt(message=message, attempts=1, delivered_to=[])


def _leave_join_scenario(adversary=None, *, loss: float = 0.0, seed: object = 3) -> Scenario:
    return Scenario(
        name="attack-lab",
        initial_size=6,
        schedule=TraceReplay(
            events=(
                LeaveEvent(leaving=Identity("member-003")),
                LeaveEvent(leaving=Identity("member-004")),
                JoinEvent(joining=Identity("member-new")),
            )
        ),
        seed=seed,
        loss_probability=loss,
        adversary=adversary,
    )


# ---------------------------------------------------------------------------
# Configuration and presets
# ---------------------------------------------------------------------------

class TestAdversaryConfig:
    def test_every_preset_builds_a_suite(self):
        for name in ATTACKER_PRESETS:
            suite = AdversaryConfig.preset(name).build(_rng(name))
            assert isinstance(suite, AdversarySuite)
            assert suite.actors

    def test_unknown_preset_rejected(self):
        with pytest.raises(ParameterError):
            AdversaryConfig.preset("quantum")

    def test_invalid_mitm_mode_rejected(self):
        with pytest.raises(ParameterError):
            AdversaryConfig(mitm=True, mitm_mode="teleport")

    def test_no_actors_rejected(self):
        with pytest.raises(ParameterError):
            AdversaryConfig(eavesdropper=False).build(_rng())

    def test_describe_names_the_models(self):
        config = AdversaryConfig(injector=True, mitm=True, attack_from=2)
        text = config.describe()
        assert "inject" in text and "mitm" in text and "from step 2" in text

    def test_scenario_description_carries_the_adversary(self):
        scenario = _leave_join_scenario(AdversaryConfig.preset("inject"))
        assert "adversary[" in scenario.describe()
        assert "adversary" not in _leave_join_scenario().describe()


# ---------------------------------------------------------------------------
# Actors in isolation
# ---------------------------------------------------------------------------

class TestActors:
    def test_eavesdropper_records_values_and_charges_itself_only(self):
        actor = Eavesdropper("eve", _rng())
        message = _message(x=777)
        actor.observe(message, _receipt(message))
        assert 777 in actor.seen_values
        assert actor.node.recorder.rx_bits == message.wire_bits
        assert actor.knows_key(777)
        assert not actor.knows_key(778)

    def test_injector_queues_one_forgery_per_round_label(self):
        actor = Injector("mallory", _rng())
        message = _message()
        actor.observe(message, _receipt(message))
        actor.observe(message, _receipt(message))
        forged = actor.drain()
        assert len(forged) == 1
        assert forged[0].sender == message.sender
        assert forged[0].round_label == message.round_label
        assert forged[0].wire_bits == message.wire_bits
        assert forged[0].value("X") != message.value("X")
        assert actor.stats.injected == 1

    def test_injector_ignores_untargeted_messages(self):
        actor = Injector("mallory", _rng())
        plain = Message.broadcast(
            Identity("member-001"), "hello", [identity_part(Identity("member-001"))]
        )
        actor.observe(plain, _receipt(plain))
        assert actor.drain() == []

    def test_replayer_only_fires_across_steps(self):
        actor = Replayer("rita", _rng())
        first = _message(x=111)
        actor.begin_step(0, "establish", True)
        actor.observe(first, _receipt(first))
        assert actor.drain() == []  # nothing older to replay yet
        actor.begin_step(1, "leave", True)
        fresh = _message(x=222)
        actor.observe(fresh, _receipt(fresh))
        replayed = actor.drain()
        assert len(replayed) == 1 and replayed[0].value("X") == 111
        assert actor.stats.replayed == 1

    def test_mitm_modes(self):
        message = _message()
        modify = ManInTheMiddle("m1", _rng("m1"), mode="modify")
        decision = modify.intercept(message)
        assert decision.replacement is not None
        assert decision.replacement.value("X") != message.value("X")
        assert modify.intercept(message) is None  # one hit per label per step

        drop = ManInTheMiddle("m2", _rng("m2"), mode="drop")
        assert drop.intercept(message).drop is True

        delay = ManInTheMiddle("m3", _rng("m3"), mode="delay", delay_s=1.5)
        assert delay.intercept(message).delay_s == 1.5

    def test_inactive_actors_do_nothing(self):
        actor = Injector("mallory", _rng())
        actor.begin_step(0, "establish", active=False)
        message = _message()
        actor.observe(message, _receipt(message))
        assert actor.drain() == []
        mitm = ManInTheMiddle("m", _rng("m"))
        mitm.begin_step(0, "establish", active=False)
        assert mitm.intercept(message) is None

    def test_suite_shares_one_stats_ledger(self):
        a, b = Injector("a", _rng("a")), Replayer("b", _rng("b"))
        suite = AdversarySuite([a, b])
        assert a.stats is suite.stats and b.stats is suite.stats

    def test_suite_tap_is_idempotent_per_medium(self):
        suite = AdversarySuite([Eavesdropper("eve", _rng())])
        medium = BroadcastMedium()
        suite.attach(medium)
        suite.attach(medium)
        assert len(medium.taps) == 1


# ---------------------------------------------------------------------------
# Oracles in isolation
# ---------------------------------------------------------------------------

class TestOracles:
    @staticmethod
    def _ctx(**overrides):
        base = dict(
            kind="establish",
            index=0,
            state=None,
            agreed=True,
            key=42,
            previous_keys=(),
            departed_keys=frozenset(),
            added_members=False,
            removed_members=False,
            adversary=None,
            attacks=0,
            aborted=False,
        )
        base.update(overrides)
        return OracleContext(**base)

    def test_key_consistency(self):
        assert evaluate_oracles(self._ctx())["key-consistency"] is True
        assert evaluate_oracles(self._ctx(agreed=False, key=None))["key-consistency"] is False
        assert evaluate_oracles(self._ctx(aborted=True, key=None))["key-consistency"] is None

    def test_forward_secrecy(self):
        assert evaluate_oracles(self._ctx())["forward-secrecy"] is None  # nobody left yet
        held = evaluate_oracles(self._ctx(departed_keys=frozenset({7}), key=42))
        assert held["forward-secrecy"] is True
        violated = evaluate_oracles(self._ctx(departed_keys=frozenset({42}), key=42))
        assert violated["forward-secrecy"] is False

    def test_backward_secrecy(self):
        joined = self._ctx(added_members=True, previous_keys=(7, 9), key=42)
        assert evaluate_oracles(joined)["backward-secrecy"] is True
        reused = self._ctx(added_members=True, previous_keys=(42,), key=42)
        assert evaluate_oracles(reused)["backward-secrecy"] is False
        assert evaluate_oracles(self._ctx())["backward-secrecy"] is None

    def test_implicit_key_auth_consults_the_adversary(self):
        eve = Eavesdropper("eve", _rng())
        suite = AdversarySuite([eve])
        assert evaluate_oracles(self._ctx(adversary=suite))["implicit-key-auth"] is True
        # A protocol that broadcast its key in the clear would be caught:
        leak = _message(x=42)
        eve.observe(leak, _receipt(leak))
        assert evaluate_oracles(self._ctx(adversary=suite))["implicit-key-auth"] is False

    def test_attack_detected(self):
        assert evaluate_oracles(self._ctx())["attack-detected"] is None
        absorbed = self._ctx(attacks=2, agreed=True)
        assert evaluate_oracles(absorbed)["attack-detected"] is True
        aborted = self._ctx(attacks=2, aborted=True, agreed=False, key=None)
        assert evaluate_oracles(aborted)["attack-detected"] is True
        silent = self._ctx(attacks=2, agreed=False, key=None)
        assert evaluate_oracles(silent)["attack-detected"] is False


# ---------------------------------------------------------------------------
# The passive adversary perturbs nothing (satellite: zero-energy taps)
# ---------------------------------------------------------------------------

class TestPassiveEquivalence:
    @pytest.mark.parametrize("protocol", ["proposed-gka", "bd-unauthenticated", "bd-ecdsa"])
    def test_lossy_scenario_bit_identical_under_passive_tap(self, small_setup, protocol):
        base = Scenario(
            name="tapped",
            initial_size=6,
            schedule=PoissonChurn(length=5),
            seed=11,
            loss_probability=0.15,
        )
        runner = ScenarioRunner(small_setup)
        honest = runner.run(protocol, base)
        tapped = runner.run(protocol, base.with_adversary(AdversaryConfig()))
        assert honest.per_member_energy_j() == tapped.per_member_energy_j()
        for a, b in zip(honest.records, tapped.records):
            assert (a.messages, a.bits, a.bits_with_retries, a.transmissions) == (
                b.messages,
                b.bits,
                b.bits_with_retries,
                b.transmissions,
            )
            assert a.agreed and b.agreed
        assert tapped.total_attacks == 0
        assert tapped.security_verdict == "clean"

    def test_overhearing_is_charged_to_the_attacker_node_only(self, small_setup):
        scenario = Scenario(name="audit", initial_size=5, seed=2)
        suite = AdversaryConfig().build(_rng("audit"))
        staged = scenario.with_adversary(AdversaryConfig())
        # Run through the runner but grab the suite the scenario builds by
        # running the actors directly instead: attach our own suite too.
        runner = ScenarioRunner(small_setup)
        report = runner.run("bd", staged)
        assert report.agreed_throughout
        # Direct check on a fresh medium: the tap charges only the attacker.
        medium = BroadcastMedium()
        suite.attach(medium)
        from repro.network.node import Node

        a, b = Node(Identity("a")), Node(Identity("b"))
        medium.attach(a)
        medium.attach(b)
        message = Message.broadcast(
            Identity("a"), "r", [group_element_part("X", 5, 256)]
        )
        medium.send(message)
        eve = suite.actors[0]
        assert eve.node.recorder.rx_bits == message.wire_bits
        assert a.recorder.rx_bits == 0  # sender pays tx only
        assert b.recorder.rx_bits == message.wire_bits  # the honest reception


# ---------------------------------------------------------------------------
# Headline results: who falls to what
# ---------------------------------------------------------------------------

class TestAttackOutcomes:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_eavesdropper_never_derives_the_key(self, small_setup, protocol):
        scenario = _leave_join_scenario(AdversaryConfig.preset("eavesdrop"))
        report = ScenarioRunner(small_setup, check_agreement=False).run(protocol, scenario)
        assert report.agreed_throughout
        outcomes = report.oracle_outcomes()
        assert outcomes["implicit-key-auth"] is True
        assert outcomes["key-consistency"] is True
        assert report.security_verdict == "clean"

    def test_injection_breaks_unauthenticated_bd_silently(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("inject"))
        report = ScenarioRunner(small_setup, check_agreement=False).run("bd", scenario)
        assert report.security_verdict == "broken"
        assert report.total_attacks > 0
        assert not report.attacks_detected
        first = report.records[0]
        assert first.oracles["key-consistency"] is False
        assert first.oracles["attack-detected"] is False
        assert not first.detected

    @pytest.mark.parametrize(
        "protocol", ["proposed-gka", "bd-sok", "bd-ecdsa", "bd-dsa", "bd-rerun-ecdsa"]
    )
    def test_authenticated_protocols_detect_injection(self, small_setup, protocol):
        scenario = _leave_join_scenario(AdversaryConfig.preset("inject"))
        report = ScenarioRunner(small_setup, check_agreement=False).run(protocol, scenario)
        assert report.security_verdict == "detected"
        assert report.attacks_detected
        assert report.aborted
        assert report.records[-1].abort_reason

    def test_proposed_recovers_from_a_single_shot_injection(self, small_setup):
        # Budget 1: only the first Round-2 attempt is forged; the batch check
        # fails, the coordinator triggers "all members retransmit", and the
        # clean second attempt agrees — the paper's recovery path, survived.
        scenario = Scenario(
            name="recover",
            initial_size=5,
            seed=4,
            adversary=AdversaryConfig(injector=True, max_actions_per_step=1),
        )
        report = ScenarioRunner(small_setup, check_agreement=False).run(
            "proposed-gka", scenario
        )
        assert report.security_verdict == "resisted"
        assert report.agreed_throughout
        assert report.total_attacks == 1
        assert report.records[0].oracles["attack-detected"] is True

    def test_replay_breaks_rerun_bd_but_not_signed_rerun(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("replay"))
        runner = ScenarioRunner(small_setup, check_agreement=False)
        assert runner.run("bd", scenario).security_verdict == "broken"
        assert runner.run("bd-rerun-ecdsa", scenario).security_verdict == "detected"
        assert runner.run("proposed-gka", scenario).security_verdict == "detected"

    def test_mitm_drop_is_detected_as_a_stall(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("drop"))
        report = ScenarioRunner(small_setup, check_agreement=False).run("bd", scenario)
        assert report.security_verdict == "detected"
        assert report.records[-1].aborted

    def test_mitm_delay_is_absorbed(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("delay"))
        report = ScenarioRunner(small_setup, check_agreement=False).run("bd", scenario)
        assert report.security_verdict == "resisted"
        assert report.agreed_throughout

    def test_compromised_long_term_key_reveals_no_group_key(self, small_setup):
        scenario = _leave_join_scenario(
            AdversaryConfig(compromiser=True, compromise_at=0)
        )
        report = ScenarioRunner(small_setup, check_agreement=False).run(
            "proposed-gka", scenario
        )
        assert report.total_attacks == 1  # the theft itself
        assert report.oracle_outcomes()["implicit-key-auth"] is True
        assert report.security_verdict == "resisted"

    def test_compromiser_steals_the_named_target(self, small_setup):
        config = AdversaryConfig(
            compromiser=True, compromise_target="member-002", compromise_at=0
        )
        suite = config.build(_rng("steal"))
        scenario = Scenario(name="steal", initial_size=5, seed=6)
        engine = EngineConfig(adversary=suite)
        runner = ScenarioRunner(small_setup, engine=engine)
        # Bypass scenario.build_adversary by driving the protocol directly so
        # we can inspect the suite afterwards.
        from repro.core.registry import create_protocol

        protocol = create_protocol("proposed-gka", small_setup)
        suite.begin_step(0, "establish")
        result = protocol.run(
            scenario.initial_members(), seed=scenario.child_seed("protocol/establish"),
            engine=engine,
        )
        suite.end_step(result.state)
        assert suite.compromised_parties == {"member-002"}
        assert not suite.knows_key(result.group_key)

    def test_attack_window_delays_active_attacks(self, small_setup):
        scenario = _leave_join_scenario(
            AdversaryConfig(injector=True, attack_from=2)
        )
        report = ScenarioRunner(small_setup, check_agreement=False).run("bd", scenario)
        assert report.records[0].attacks == 0  # establishment untouched
        assert report.records[1].attacks == 0  # first leave untouched
        assert any(r.attacks for r in report.records[2:])


# ---------------------------------------------------------------------------
# Reports, exports and the comparison views
# ---------------------------------------------------------------------------

class TestSecurityReporting:
    @pytest.fixture(scope="class")
    def attacked_reports(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("inject"))
        runner = ScenarioRunner(small_setup, check_agreement=False)
        return runner.run_all(["bd", "proposed-gka"], scenario)

    def test_csv_carries_attack_and_oracle_columns(self, attacked_reports):
        rows = list(csv.DictReader(io.StringIO(attacked_reports[0].to_csv())))
        assert {"attacks", "detected", "aborted", "oracle_key_consistency"} <= set(rows[0])
        assert rows[0]["oracle_key_consistency"] == "FAIL"

    def test_json_carries_the_security_story(self, attacked_reports):
        payload = json.loads(attacked_reports[0].to_json())
        assert payload["totals"]["security_verdict"] == "broken"
        assert payload["totals"]["attacks"] > 0
        assert payload["oracles"]["key-consistency"] is False
        assert "oracles" in payload["records"][0]

    def test_comparison_views_show_verdicts(self, attacked_reports):
        table = comparison_table(attacked_reports)
        assert "verdict" in table and "broken" in table and "detected" in table
        rows = list(csv.DictReader(io.StringIO(comparison_csv(attacked_reports))))
        verdicts = {row["protocol"]: row["security_verdict"] for row in rows}
        assert verdicts["bd-unauthenticated"] == "broken"
        assert verdicts["proposed-gka"] == "detected"
        payload = json.loads(comparison_json(attacked_reports))
        assert payload["protocols"][0]["attacks"] > 0

    def test_honest_comparison_table_unchanged(self, small_setup):
        scenario = Scenario(name="honest", initial_size=5, seed=2)
        reports = ScenarioRunner(small_setup).run_all(["bd"], scenario)
        assert "verdict" not in comparison_table(reports)

    def test_abort_ends_the_scenario_early(self, small_setup):
        scenario = _leave_join_scenario(AdversaryConfig.preset("inject"))
        report = ScenarioRunner(small_setup, check_agreement=False).run(
            "bd-ecdsa", scenario
        )
        assert report.records[-1].aborted
        assert len(report.records) < 4  # establishment + 3 events, cut short
        assert report.final_size == 0


# ---------------------------------------------------------------------------
# The attack matrix
# ---------------------------------------------------------------------------

class TestAttackMatrix:
    @pytest.fixture(scope="class")
    def matrix(self, small_setup):
        return run_attack_matrix(
            small_setup,
            protocols=["proposed-gka", "bd-unauthenticated", "bd-ecdsa"],
            attackers={
                "baseline": None,
                "inject": AdversaryConfig.preset("inject"),
                "mitm": AdversaryConfig.preset("mitm"),
            },
        )

    def test_headline_verdicts(self, matrix):
        assert matrix.verdict("bd-unauthenticated", "inject") == "broken"
        assert matrix.verdict("bd-unauthenticated", "mitm") == "broken"
        assert matrix.verdict("proposed-gka", "inject") == "detected"
        assert matrix.verdict("bd-ecdsa", "inject") == "detected"
        for protocol in matrix.protocols:
            assert matrix.verdict(protocol, "baseline") == "clean"

    def test_fallen_lists_only_broken_cells(self, matrix):
        fallen = {(o.protocol, o.attacker) for o in matrix.fallen()}
        assert fallen == {
            ("bd-unauthenticated", "inject"),
            ("bd-unauthenticated", "mitm"),
        }

    def test_matrix_renders_and_exports(self, matrix, tmp_path):
        table = matrix.matrix_table()
        assert "proposed-gka" in table and "inject" in table
        csv_text = matrix.to_csv(str(tmp_path / "matrix.csv"))
        rows = list(csv.DictReader(io.StringIO(csv_text)))
        assert len(rows) == 9  # 3 protocols x 3 attackers
        payload = json.loads(matrix.to_json(str(tmp_path / "matrix.json")))
        assert payload["protocols"]["bd-unauthenticated"]["inject"]["verdict"] == "broken"
        assert (tmp_path / "matrix.csv").exists() and (tmp_path / "matrix.json").exists()

    def test_classify_clean_report(self, small_setup):
        scenario = Scenario(name="plain", initial_size=5, seed=2)
        report = ScenarioRunner(small_setup).run("bd", scenario)
        assert classify_report(report) == ("clean", "")


# ---------------------------------------------------------------------------
# Satellite: leave/partition machines under lossy media
# ---------------------------------------------------------------------------

class TestDeparturesUnderLoss:
    @pytest.fixture(scope="class")
    def departure_scenario(self):
        return Scenario(
            name="lossy-departures",
            initial_size=8,
            schedule=TraceReplay(
                events=(
                    LeaveEvent(leaving=Identity("member-005")),
                    PartitionEvent(
                        leaving=(Identity("member-002"), Identity("member-006"))
                    ),
                    LeaveEvent(leaving=Identity("member-001")),
                )
            ),
            seed=13,
            loss_probability=0.25,
        )

    def test_instant_mode_retries_through_the_loss(self, small_setup, departure_scenario):
        report = ScenarioRunner(small_setup).run("proposed-gka", departure_scenario)
        assert report.agreed_throughout
        assert report.final_size == 4
        # The lossy medium made at least one retransmission happen somewhere.
        assert report.total_bits(include_retries=True) > report.total_bits()
        kinds = [r.kind for r in report.records]
        assert kinds == ["establish", "leave", "partition", "leave"]

    def test_latency_mode_recovers_via_timeout_waves(self, small_setup, departure_scenario):
        engine = EngineConfig(latency=FixedLatency(0.01), round_timeout_s=0.5)
        report = ScenarioRunner(small_setup, engine=engine).run(
            "proposed-gka", departure_scenario
        )
        assert report.agreed_throughout
        assert report.total_sim_latency_s > 0
        # Departure records carry their own virtual-time story.
        for record in report.records:
            assert record.sim_latency_s >= 0

    def test_departure_keys_rotate_under_loss(self, small_setup, departure_scenario):
        report = ScenarioRunner(small_setup).run("proposed-gka", departure_scenario)
        outcomes = report.oracle_outcomes()
        assert outcomes["key-consistency"] is True
        assert outcomes["forward-secrecy"] is True


# ---------------------------------------------------------------------------
# Satellite: randomized event chains keep KeyConsistency green (no adversary)
# ---------------------------------------------------------------------------

class TestRandomizedChains:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_key_consistency_oracle_holds_for_every_protocol(self, small_setup, protocol):
        scenario = Scenario(
            name="chain",
            initial_size=6,
            schedule=PoissonChurn(
                length=6, join_rate=2.0, leave_rate=2.0, merge_rate=0.5, partition_rate=0.5
            ),
            seed=f"chain-{protocol}",
            loss_probability=0.1,
        )
        report = ScenarioRunner(small_setup).run(protocol, scenario)
        for record in report.records:
            assert record.oracles["key-consistency"] is True, (
                f"{protocol} broke key consistency at step {record.index} ({record.kind})"
            )
        outcomes = report.oracle_outcomes()
        assert outcomes["key-consistency"] is True
        assert outcomes["forward-secrecy"] in (True, None)
        assert outcomes["backward-secrecy"] in (True, None)


# ---------------------------------------------------------------------------
# Satellite: the python -m repro.sim CLI
# ---------------------------------------------------------------------------

class TestSimCli:
    @staticmethod
    def _spec(tmp_path, **overrides):
        spec = {
            "name": "cli-test",
            "initial_size": 5,
            "seed": 7,
            "schedule": {"kind": "poisson", "length": 3},
        }
        spec.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_runs_and_writes_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "cmp.csv"
        json_path = tmp_path / "cmp.json"
        code = sim_main(
            [
                self._spec(tmp_path),
                "--protocols",
                "proposed-gka,bd-unauthenticated",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "proposed-gka" in out and "bd-unauthenticated" in out
        rows = list(csv.DictReader(io.StringIO(csv_path.read_text())))
        assert [row["protocol"] for row in rows] == ["proposed-gka", "bd-unauthenticated"]
        payload = json.loads(json_path.read_text())
        assert len(payload["protocols"]) == 2

    def test_adversary_flag_overrides_the_spec(self, tmp_path, capsys):
        code = sim_main(
            [
                self._spec(tmp_path),
                "--protocols",
                "bd-unauthenticated",
                "--adversary",
                "inject",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "broken" in out

    def test_adversary_spec_inside_the_file(self, tmp_path, capsys):
        spec = self._spec(tmp_path, adversary={"mitm": True})
        code = sim_main([spec, "--protocols", "bd-unauthenticated", "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"initial_size": 1}')
        assert sim_main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_engine_fails_cleanly(self, tmp_path, capsys):
        assert sim_main([self._spec(tmp_path), "--engine", "warp"]) == 2
        assert "error:" in capsys.readouterr().err
