"""The fleet subsystem: framing, orchestration, fault tolerance, determinism.

The headline property extends the campaign determinism pin across the
network boundary: a fleet run — any worker count, workers joining late or
**dying mid-cell (SIGKILL)** — must assemble a ``CampaignResult``
bit-identical to ``run_campaign(workers=1)``.  Alongside it this file pins
the failure semantics (worker loss -> requeue; bounded retries -> error
rows, never a dead sweep; heartbeat silence counts as loss even on a live
TCP link), the cache contract (hits never dispatched), and the wire layer's
robustness against fragmentation and garbage.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import List, Tuple

import pytest

from repro.campaign import CampaignSpec, plan_campaign, run_campaign
from repro.exceptions import FleetError, ParameterError
from repro.fleet import (
    CampaignController,
    FleetWorker,
    FrameDecoder,
    PROTOCOL_VERSION,
    encode_frame,
    run_fleet_campaign,
)
from repro.fleet.local import _fork_context, _local_worker_main
from repro.fleet.wire import MAX_FRAME_BYTES, send_message


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="fleet-unit",
        protocols=("proposed-gka", "bd-unauthenticated"),
        group_sizes=(5,),
        losses=(0.0,),
        schedule={"kind": "poisson", "length": 2},
        seed=17,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


# ---------------------------------------------------------------------------
# Wire framing
# ---------------------------------------------------------------------------

class TestWire:
    def test_round_trip(self):
        decoder = FrameDecoder()
        messages = [
            {"type": "hello", "worker": "w1", "pid": 42, "version": PROTOCOL_VERSION},
            {"type": "cell", "unit": "abc", "payload": {"protocol": "bd", "axes": {}}},
            {"type": "heartbeat"},
        ]
        stream = b"".join(encode_frame(m) for m in messages)
        assert decoder.feed(stream) == messages
        assert decoder.pending_bytes() == 0

    def test_byte_by_byte_fragmentation(self):
        decoder = FrameDecoder()
        message = {"type": "row", "unit": "x" * 100, "row": {"energy_j": 1.5}}
        received = []
        for byte in encode_frame(message):
            received.extend(decoder.feed(bytes([byte])))
        assert received == [message]

    def test_many_frames_in_one_chunk_and_partial_tail(self):
        decoder = FrameDecoder()
        first = encode_frame({"type": "heartbeat"})
        second = encode_frame({"type": "bye", "cells_done": 3})
        chunk = first + second + second[:5]  # partial third frame
        assert len(decoder.feed(chunk)) == 2
        assert decoder.pending_bytes() == 5
        assert decoder.feed(second[5:]) == [{"type": "bye", "cells_done": 3}]

    def test_oversize_length_prefix_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(FleetError, match="exceeds"):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_non_json_body_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(FleetError, match="undecodable"):
            decoder.feed(struct.pack("!I", 4) + b"\xff\xfe\x00\x01")

    def test_unknown_message_type_rejected(self):
        decoder = FrameDecoder()
        body = json.dumps({"type": "exploit"}).encode()
        import struct

        with pytest.raises(FleetError, match="malformed"):
            decoder.feed(struct.pack("!I", len(body)) + body)
        with pytest.raises(FleetError, match="unknown fleet message type"):
            encode_frame({"type": "exploit"})


# ---------------------------------------------------------------------------
# The determinism pin across the socket boundary (tentpole acceptance)
# ---------------------------------------------------------------------------

class TestFleetDeterminism:
    @pytest.fixture(scope="class")
    def grid(self):
        # Lossy medium (retry streams) + an adversary column (verdicts) —
        # the row fields the acceptance criterion names explicitly.
        return CampaignSpec(
            name="fleet-determinism",
            protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
            group_sizes=(5,),
            losses=(0.05,),
            schedule={"kind": "poisson", "length": 2},
            adversaries={"none": None, "inject": "inject"},
            seed="fleet-determinism",
        )

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return run_campaign(grid, workers=1)

    def test_two_socket_workers_bit_identical_to_serial(self, grid, serial):
        fleet = run_fleet_campaign(grid, workers=2)
        assert fleet.deterministic_rows() == serial.deterministic_rows()
        assert fleet.failures() == []
        for row_f, row_s in zip(fleet.rows, serial.rows):
            assert row_f["key_fingerprint"] == row_s["key_fingerprint"]
            assert row_f["energy_j"] == row_s["energy_j"]
            assert row_f["sim_latency_s"] == row_s["sim_latency_s"]
            assert row_f["security_verdict"] == row_s["security_verdict"]

    def test_single_worker_fleet_matches_too(self, grid, serial):
        fleet = run_fleet_campaign(grid, workers=1)
        assert fleet.deterministic_rows() == serial.deterministic_rows()

    def test_progress_snapshots_are_monotone_and_complete(self, grid):
        snapshots = []
        run_fleet_campaign(grid, workers=2, on_progress=snapshots.append)
        assert snapshots, "no progress snapshots emitted"
        done = [s.done for s in snapshots]
        assert done == sorted(done)
        final = snapshots[-1]
        assert final.complete and final.done == final.total == len(grid.cells())
        assert final.rows_per_s > 0
        line = final.render()
        assert f"{final.done}/{final.total} cells" in line and "rows/s" in line


# ---------------------------------------------------------------------------
# Caching: hits never leave the controller
# ---------------------------------------------------------------------------

class TestFleetCache:
    def test_warm_run_dispatches_nothing(self, tmp_path):
        spec = small_spec()
        cold = run_fleet_campaign(spec, workers=2, cache_dir=str(tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)

        controller = CampaignController(spec, cache_dir=str(tmp_path))
        warm = controller.serve()  # completes with zero workers
        assert controller.dispatched_units == 0
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.deterministic_rows() == cold.deterministic_rows()
        assert all(row["cached"] for row in warm.rows)

    def test_partial_cache_ships_only_pending_cells(self, tmp_path):
        run_fleet_campaign(small_spec(), workers=2, cache_dir=str(tmp_path))
        edited = small_spec(losses=(0.0, 0.1))
        controller = CampaignController(edited, cache_dir=str(tmp_path))
        address = controller.bind()
        process = _fork_context().Process(
            target=_local_worker_main, args=(address, "w0"), daemon=True
        )
        process.start()
        try:
            result = controller.serve()
        finally:
            process.join(timeout=10.0)
        assert controller.dispatched_units == 2  # only the loss=0.1 cells
        assert (result.cache_hits, result.cache_misses) == (2, 2)
        assert [row["cell"] for row in result.rows] == [c.key for c in edited.cells()]

    def test_identical_payloads_deduplicate_to_one_dispatch(self):
        spec = small_spec(protocols=("proposed-gka",))
        cells = spec.cells()
        assert len(cells) == 1
        # Two cells with byte-identical payloads (a duplicated grid point).
        from dataclasses import replace

        doubled = [cells[0], replace(cells[0], index=1)]
        controller = CampaignController(spec, cells=doubled)
        address = controller.bind()
        process = _fork_context().Process(
            target=_local_worker_main, args=(address, "w0"), daemon=True
        )
        process.start()
        try:
            result = controller.serve()
        finally:
            process.join(timeout=10.0)
        assert controller.dispatched_units == 1
        assert len(result.rows) == 2
        assert result.deterministic_rows()[0] == result.deterministic_rows()[1]


# ---------------------------------------------------------------------------
# Fault tolerance: loss detection, requeues, bounded retries
# ---------------------------------------------------------------------------

def _hello(sock: socket.socket, name: str) -> None:
    send_message(
        sock,
        {"type": "hello", "version": PROTOCOL_VERSION, "worker": name, "pid": os.getpid()},
    )


def _recv_until_cell(sock: socket.socket) -> None:
    decoder = FrameDecoder()
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return
        for message in decoder.feed(chunk):
            if message.get("type") == "cell":
                return


def _suicidal_worker(address: Tuple[str, int]) -> None:
    """Registers, accepts one cell, then dies without a word (hard exit)."""
    sock = socket.create_connection(address)
    _hello(sock, "suicidal")
    _recv_until_cell(sock)
    os._exit(1)


def _hung_worker(address: Tuple[str, int]) -> None:
    """Registers, accepts one cell, then goes silent on a live TCP link."""
    sock = socket.create_connection(address)
    _hello(sock, "hung")
    _recv_until_cell(sock)
    time.sleep(600)


class TestWorkerLossRecovery:
    def test_sigkilled_worker_mid_cell_requeues_and_stays_bit_identical(self):
        # The acceptance criterion: >= 2 socket workers, one forcibly killed
        # mid-campaign, result bit-identical to workers=1.
        spec = CampaignSpec(
            name="fleet-kill",
            protocols=("proposed-gka", "bd-unauthenticated"),
            group_sizes=(8,),
            losses=(0.05,),
            schedule={"kind": "poisson", "length": 3},
            seed="fleet-kill",
        )
        serial = run_campaign(spec, workers=1)

        killed: List[int] = []

        def kill_first_busy_worker(snapshot) -> None:
            if killed:
                return
            for view in snapshot.workers.values():
                if view.state == "busy" and view.pid:
                    killed.append(view.pid)
                    os.kill(view.pid, signal.SIGKILL)
                    return

        controller = CampaignController(
            spec,
            heartbeat_s=0.2,
            idle_timeout_s=60.0,
            on_progress=kill_first_busy_worker,
        )
        address = controller.bind()
        context = _fork_context()
        processes = [
            context.Process(target=_local_worker_main, args=(address, f"w{i}"), daemon=True)
            for i in range(2)
        ]
        for process in processes:
            process.start()
        try:
            result = controller.serve()
        finally:
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()

        assert killed, "no worker was ever busy — the kill never happened"
        assert controller.worker_losses >= 1
        assert controller.requeues >= 1, "the in-flight cell was not requeued"
        assert result.failures() == []
        assert result.deterministic_rows() == serial.deterministic_rows()

    def test_heartbeat_silence_counts_as_loss_even_on_a_live_link(self):
        # The hung worker holds a live TCP connection but never heartbeats:
        # EOF detection alone would wait forever; the heartbeat deadline
        # must reap it and hand its cell to the healthy worker.
        spec = small_spec(protocols=("proposed-gka",))
        serial = run_campaign(spec, workers=1)
        controller = CampaignController(
            spec, heartbeat_s=0.1, heartbeat_misses=3, idle_timeout_s=60.0
        )
        address = controller.bind()
        context = _fork_context()
        hung = context.Process(target=_hung_worker, args=(address,), daemon=True)
        hung.start()
        time.sleep(0.3)  # let the hung worker register and take the cell
        good = context.Process(
            target=_local_worker_main, args=(address, "good"), daemon=True
        )
        good.start()
        try:
            result = controller.serve()
        finally:
            hung.terminate()
            good.join(timeout=10.0)
            if good.is_alive():
                good.terminate()
        assert controller.worker_losses >= 1
        assert controller.requeues >= 1
        assert result.failures() == []
        assert result.deterministic_rows() == serial.deterministic_rows()

    def test_retries_exhausted_becomes_an_error_row_not_a_dead_sweep(self, tmp_path):
        spec = small_spec(protocols=("proposed-gka",))
        controller = CampaignController(
            spec,
            cache_dir=str(tmp_path),
            heartbeat_s=0.2,
            max_requeues=1,
            idle_timeout_s=30.0,
        )
        address = controller.bind()
        context = _fork_context()
        # Two losses: the first dispatch is requeued (attempts=1 <= 1), the
        # second exhausts the budget (attempts=2 > 1) -> error row.
        first = context.Process(target=_suicidal_worker, args=(address,), daemon=True)
        first.start()
        second = context.Process(target=_suicidal_worker, args=(address,), daemon=True)
        second.start()
        result = controller.serve()
        first.join(timeout=10.0)
        second.join(timeout=10.0)
        assert len(result.rows) == 1
        failures = result.failures()
        assert len(failures) == 1
        assert "worker lost" in failures[0]["error"]
        assert "retries exhausted" in failures[0]["error"]
        # Error rows keep the cell's identity and are never cached.
        assert failures[0]["cell"] == spec.cells()[0].key
        rerun_plan = plan_campaign(spec, cache_dir=str(tmp_path))
        assert len(rerun_plan.pending) == 1

    def test_no_workers_times_out_instead_of_hanging(self):
        controller = CampaignController(
            small_spec(), heartbeat_s=0.05, idle_timeout_s=0.2
        )
        controller.bind()
        with pytest.raises(FleetError, match="no workers"):
            controller.serve()

    def test_version_mismatch_is_rejected_at_hello(self):
        spec = small_spec(protocols=("proposed-gka",))
        controller = CampaignController(spec, heartbeat_s=0.1, idle_timeout_s=1.5)
        address = controller.bind()
        rejected = threading.Event()

        def ancient_worker():
            sock = socket.create_connection(address)
            send_message(sock, {"type": "hello", "version": 0, "worker": "old"})
            decoder = FrameDecoder()
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                for message in decoder.feed(chunk):
                    if message.get("type") == "shutdown":
                        rejected.set()
                        return

        thread = threading.Thread(target=ancient_worker, daemon=True)
        thread.start()
        with pytest.raises(FleetError, match="no workers"):
            controller.serve()  # the old worker never counts as serving
        thread.join(timeout=5.0)
        assert rejected.is_set()


# ---------------------------------------------------------------------------
# Parameter validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ParameterError, match="at least one worker"):
            run_fleet_campaign(small_spec(), workers=0)

    def test_bad_controller_knobs_rejected(self):
        with pytest.raises(ParameterError, match="heartbeat"):
            CampaignController(small_spec(), heartbeat_s=0.0)
        with pytest.raises(ParameterError, match="max_requeues"):
            CampaignController(small_spec(), max_requeues=-1)

    def test_non_contiguous_adjusted_cells_rejected(self):
        from dataclasses import replace

        cells = small_spec().cells()
        with pytest.raises(ParameterError, match="contiguous"):
            CampaignController(small_spec(), cells=[replace(cells[0], index=5)])

    def test_address_requires_bind(self):
        controller = CampaignController(small_spec())
        with pytest.raises(FleetError, match="not bound"):
            controller.address

    def test_cell_simulation_failures_stay_error_rows(self):
        # A cell that fails *inside* the worker is an error row (the
        # campaign contract), never a worker loss or a requeue.
        spec = small_spec(protocols=("proposed-gka", "no-such-protocol"))
        result = run_fleet_campaign(spec, workers=2)
        assert len(result.rows) == 2
        failures = result.failures()
        assert len(failures) == 1
        assert "unknown protocol" in failures[0]["error"]


# ---------------------------------------------------------------------------
# The python -m repro.fleet CLI (real subprocesses, real sockets)
# ---------------------------------------------------------------------------

class TestFleetCli:
    @staticmethod
    def _env():
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_controller_plus_two_workers_end_to_end(self, tmp_path):
        spec = {
            "name": "cli-fleet",
            "protocols": ["proposed-gka", "bd-unauthenticated"],
            "group_sizes": [5],
            "losses": [0.0],
            "schedule": {"kind": "poisson", "length": 2},
            "seed": 3,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out_path = tmp_path / "result.json"

        controller = subprocess.Popen(
            [sys.executable, "-m", "repro.fleet", "controller",
             "--spec", str(spec_path), "--host", "127.0.0.1", "--port", "0",
             "--json", str(out_path), "--progress-every", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=self._env(),
        )
        workers: List[subprocess.Popen] = []
        try:
            port = None
            assert controller.stdout is not None
            for line in controller.stdout:
                if line.startswith("listening on "):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port, "controller never announced its port"
            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.fleet", "worker",
                     "--connect", f"127.0.0.1:{port}", "--name", f"cli-w{i}"],
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                    env=self._env(),
                )
                for i in range(2)
            ]
            assert controller.wait(timeout=120) == 0
            for worker in workers:
                assert worker.wait(timeout=30) == 0
        finally:
            for process in [controller, *workers]:
                if process.poll() is None:
                    process.kill()

        document = json.loads(out_path.read_text())
        assert document["cells"] == 2 and document["failures"] == 0
        # The CLI fleet's rows match an in-process serial run bit-for-bit.
        from repro.campaign import NONDETERMINISTIC_FIELDS

        serial = run_campaign(CampaignSpec.from_dict(spec), workers=1)
        fleet_rows = [
            {k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS}
            for row in document["rows"]
        ]
        assert fleet_rows == serial.deterministic_rows()

    def test_controller_rejects_bad_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        from repro.fleet.__main__ import main as fleet_main

        assert fleet_main(["controller", "--spec", str(bad)]) == 2
        assert fleet_main(["controller", "--spec", "/does/not/exist.json"]) == 2

    def test_worker_rejects_bad_address_and_unreachable_controller(self, capsys):
        from repro.fleet.__main__ import main as fleet_main

        assert fleet_main(["worker", "--connect", "nowhere"]) == 2
        # An unreachable controller is a clean one-line failure, not a hang.
        assert fleet_main(
            ["worker", "--connect", "127.0.0.1:1", "--connect-timeout", "0.2"]
        ) == 1
        assert "error:" in capsys.readouterr().err
