"""Shared fixtures for the test suite.

All protocol-level tests run on the small named parameter sets
(256-bit Schnorr group, 256-bit GQ modulus) so the suite stays fast; a handful
of tests explicitly exercise the paper-sized 1024-bit parameters and are
marked accordingly.  Everything is seeded, so failures reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.backends import available_backends, native_available, use_backend
from repro.core import SystemSetup
from repro.energy import DeviceProfile, RADIO_100KBPS, WLAN_SPECTRUM24
from repro.groups.params import get_gq_modulus, get_schnorr_group
from repro.mathutils.rand import DeterministicRNG
from repro.pki import Identity


@pytest.fixture(scope="session")
def small_setup() -> SystemSetup:
    """A SystemSetup on fast test-sized parameters (shared across the session)."""
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


@pytest.fixture(scope="session")
def paper_setup() -> SystemSetup:
    """A SystemSetup on the paper's 1024-bit parameters (used sparingly)."""
    return SystemSetup.from_param_sets("ipps2006-1024", "gq-1024")


@pytest.fixture(scope="session")
def small_group():
    """The small Schnorr group used by most unit tests."""
    return get_schnorr_group("test-256")


@pytest.fixture(scope="session")
def small_modulus():
    """The small GQ modulus used by most unit tests."""
    return get_gq_modulus("gq-test-256")


@pytest.fixture(params=available_backends())
def backend(request) -> str:
    """Run the requesting test once per registered crypto backend.

    Backends are bit-identical, so backend-parametrized tests assert the
    same values under every one; the ``native`` parameter skips cleanly on
    interpreters without gmpy2 rather than silently testing pure twice.
    """
    name = request.param
    if name == "native" and not native_available():
        pytest.skip("gmpy2 not installed — native backend unavailable")
    with use_backend(name):
        yield name


@pytest.fixture()
def rng() -> DeterministicRNG:
    """A fresh deterministic RNG per test."""
    return DeterministicRNG("pytest", label="test")


@pytest.fixture()
def members():
    """Six distinct identities (a convenient default group)."""
    return [Identity(f"member-{i:02d}") for i in range(6)]


@pytest.fixture(scope="session")
def wlan_profile() -> DeviceProfile:
    """StrongARM + Spectrum24 WLAN card (the paper's Table 5 configuration)."""
    return DeviceProfile(transceiver=WLAN_SPECTRUM24)


@pytest.fixture(scope="session")
def radio_profile() -> DeviceProfile:
    """StrongARM + 100 kbps radio transceiver."""
    return DeviceProfile(transceiver=RADIO_100KBPS)
