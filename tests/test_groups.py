"""Tests for the algebraic-group substrate: Schnorr groups, elliptic curves,
named parameters and the simulated pairing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.groups.curves import CURVES, NIST_P192, NIST_P256, SECP160R1, TINY_CURVE, get_curve
from repro.groups.elliptic import ECPoint, EllipticCurve, ec_multi_scalar
from repro.groups.pairing import G1Element, GTElement, SimulatedPairingGroup
from repro.groups.params import (
    GQ_PARAM_SETS,
    SCHNORR_PARAM_SETS,
    get_gq_modulus,
    get_schnorr_group,
)
from repro.groups.schnorr import SchnorrGroup
from repro.mathutils.rand import DeterministicRNG


class TestSchnorrGroup:
    def test_named_params_validate(self, small_group):
        small_group.validate(check_primality=True)
        assert small_group.p_bits == 256
        assert small_group.q_bits == 64

    def test_paper_sized_params(self):
        group = get_schnorr_group("ipps2006-1024")
        assert group.p_bits == 1024
        assert group.q_bits == 160
        assert (group.p - 1) % group.q == 0
        assert pow(group.g, group.q, group.p) == 1

    def test_params_are_cached(self):
        assert get_schnorr_group("test-256") is get_schnorr_group("test-256")

    def test_unknown_param_set(self):
        with pytest.raises(ParameterError):
            get_schnorr_group("no-such-set")
        with pytest.raises(ParameterError):
            get_gq_modulus("no-such-set")

    def test_generate_small(self):
        group = SchnorrGroup.generate(p_bits=96, q_bits=32, rng=DeterministicRNG("gen"))
        group.validate()

    def test_validation_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            SchnorrGroup(p=15, q=7, g=2).validate()
        with pytest.raises(ParameterError):
            SchnorrGroup(p=23, q=11, g=1).validate()

    def test_operations(self, small_group, backend):
        g = small_group
        a, b = 12345, 67890
        assert g.mul(a, b) == (a * b) % g.p
        assert g.div(g.mul(a, b), b) == a % g.p
        assert (g.inv(a) * a) % g.p == 1
        assert g.power(g.g, 0) == 1
        assert g.power(g.g, -1) == g.inv(g.g)
        assert g.exp_g(5) == pow(g.g, 5, g.p)

    def test_product(self, small_group):
        values = [3, 5, 7, 11]
        expected = 3 * 5 * 7 * 11 % small_group.p
        assert small_group.product(values) == expected

    def test_subgroup_membership(self, small_group):
        element = small_group.exp_g(987654321 % small_group.q)
        assert small_group.is_subgroup_element(element)
        assert small_group.is_element(element)
        assert not small_group.is_element(0)
        assert not small_group.is_subgroup_element(small_group.p - 1) or pow(
            small_group.p - 1, small_group.q, small_group.p
        ) == 1

    def test_random_exponent_range(self, small_group, rng):
        for _ in range(20):
            r = small_group.random_exponent(rng)
            assert 1 <= r < small_group.q

    def test_describe(self, small_group):
        assert "256" in small_group.describe()

    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=25)
    def test_exponent_homomorphism(self, a, b):
        group = get_schnorr_group("test-128")
        a %= group.q
        b %= group.q
        assert group.mul(group.exp_g(a), group.exp_g(b)) == group.exp_g((a + b) % group.q)


class TestEllipticCurves:
    def test_named_curves_valid(self):
        for curve in (SECP160R1, NIST_P192, NIST_P256, TINY_CURVE):
            curve.validate()
            assert curve.generator.multiply(curve.n).is_infinity

    def test_get_curve(self):
        assert get_curve("P-256") is NIST_P256
        with pytest.raises(ParameterError):
            get_curve("P-999")
        assert set(CURVES) >= {"secp160r1", "P-192", "P-256", "tiny-10007"}

    def test_identity_laws(self):
        g = TINY_CURVE.generator
        infinity = TINY_CURVE.infinity
        assert (g + infinity) == g
        assert (infinity + g) == g
        assert g.multiply(0).is_infinity
        assert (g + (-g)).is_infinity

    def test_addition_commutes(self):
        p = TINY_CURVE.generator.multiply(7)
        q = TINY_CURVE.generator.multiply(13)
        assert (p + q) == (q + p)

    def test_scalar_mult_matches_repeated_addition(self, backend):
        g = TINY_CURVE.generator
        accumulated = TINY_CURVE.infinity
        for k in range(1, 25):
            accumulated = accumulated + g
            assert g.multiply(k) == accumulated

    def test_negative_scalar(self):
        g = TINY_CURVE.generator
        assert g.multiply(-5) == g.multiply(5).negate()

    def test_point_validation(self):
        with pytest.raises(ParameterError):
            TINY_CURVE.point(1, 1)
        point = TINY_CURVE.point(TINY_CURVE.gx, TINY_CURVE.gy)
        assert point == TINY_CURVE.generator

    def test_cross_curve_addition_rejected(self):
        with pytest.raises(ParameterError):
            TINY_CURVE.generator.add(NIST_P192.generator)

    def test_singular_curve_rejected(self):
        singular = EllipticCurve("bad", p=10007, a=0, b=0, gx=0, gy=0, n=2, h=1)
        with pytest.raises(ParameterError):
            singular.validate()

    def test_dh_on_p256(self, backend):
        rng = DeterministicRNG("ecdh")
        a = NIST_P256.random_scalar(rng)
        b = NIST_P256.random_scalar(rng)
        shared_1 = NIST_P256.generator.multiply(a).multiply(b)
        shared_2 = NIST_P256.generator.multiply(b).multiply(a)
        assert shared_1 == shared_2

    def test_multi_scalar_matches_sum_of_products(self, backend):
        rng = DeterministicRNG("straus")
        points = [TINY_CURVE.generator.multiply(1 + rng.randbelow(500)) for _ in range(5)]
        scalars = [rng.randbelow(2 * TINY_CURVE.n) - TINY_CURVE.n for _ in range(5)]
        scalars[2] = 0  # zero scalars must be skipped, not crash
        expected = TINY_CURVE.infinity
        for point, scalar in zip(points, scalars):
            expected = expected + point.multiply(scalar)
        assert ec_multi_scalar(points, scalars) == expected

    def test_multi_scalar_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            ec_multi_scalar([], [])
        with pytest.raises(ParameterError):
            ec_multi_scalar([TINY_CURVE.generator], [1, 2])
        with pytest.raises(ParameterError):
            ec_multi_scalar([TINY_CURVE.generator, NIST_P192.generator], [1, 1])

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_scalar_mult_distributes(self, a, b):
        g = TINY_CURVE.generator
        assert g.multiply(a) + g.multiply(b) == g.multiply((a + b))

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=30)
    def test_order_annihilates(self, k):
        g = TINY_CURVE.generator
        assert g.multiply(k * TINY_CURVE.n).is_infinity


class TestSimulatedPairing:
    @pytest.fixture()
    def pairing(self, small_group):
        return SimulatedPairingGroup(small_group)

    def test_bilinearity(self, pairing, rng):
        p = pairing.generator
        a = rng.zq_star(pairing.order)
        b = rng.zq_star(pairing.order)
        left = pairing.pairing(p.scalar_mul(a), p.scalar_mul(b))
        right = pairing.pairing(p, p).power(a * b % pairing.order)
        assert left == right

    def test_non_degenerate(self, pairing):
        result = pairing.pairing(pairing.generator, pairing.generator)
        assert result.value != 1

    def test_gt_generator_consistency(self, pairing):
        assert pairing.pairing(pairing.generator, pairing.generator) == pairing.gt_generator()

    def test_g1_group_laws(self, pairing, rng):
        a = pairing.random_element(rng)
        b = pairing.random_element(rng)
        assert (a + b).exponent == (a.exponent + b.exponent) % pairing.order
        assert (3 * a).exponent == (3 * a.exponent) % pairing.order
        assert G1Element(0, pairing.order).is_identity
        assert a.wire_bits == 194

    def test_gt_group_laws(self, pairing):
        gt = pairing.gt_generator()
        assert (gt * gt) == gt.power(2)

    def test_map_to_point_in_range(self, pairing):
        for identity in (b"a", b"b", b"carol"):
            point = pairing.map_to_point(identity)
            assert 1 <= point.exponent < pairing.order

    def test_mixed_group_operations_rejected(self, pairing, small_group):
        other = G1Element(1, pairing.order + 2)
        with pytest.raises(ParameterError):
            pairing.generator.add(other)
        with pytest.raises(ParameterError):
            pairing.pairing(pairing.generator, other)
        with pytest.raises(ParameterError):
            GTElement(2, 7).mul(GTElement(2, 11))
