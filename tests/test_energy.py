"""Tests for the energy model: CPU extrapolation, transceivers, Tables 2 and 3,
cost recording and device-profile pricing."""

from __future__ import annotations

import pytest

from repro.energy import (
    CostRecorder,
    CommunicationCostTable,
    DeviceProfile,
    OperationCostTable,
    PAPER_TABLE2_ENERGY_MJ,
    PAPER_TABLE3_MJ,
    PENTIUM_III_1GHZ,
    PENTIUM_III_450,
    RADIO_100KBPS,
    STRONGARM_SA1110,
    WLAN_SPECTRUM24,
    derive_piii450_timings,
    energy_mj_from_time,
    extrapolate_time_ms,
    get_transceiver,
    scale_by_clock,
)
from repro.exceptions import EnergyModelError


class TestCPUModels:
    def test_strongarm_modexp_anchor(self):
        # 9.1 mJ at 240 mW -> 37.92 ms (paper Section 6).
        assert STRONGARM_SA1110.power_mw == 240.0
        assert abs(STRONGARM_SA1110.modexp_ms - 37.9166) < 0.01
        assert abs(STRONGARM_SA1110.energy_mj(STRONGARM_SA1110.modexp_ms) - 9.1) < 1e-9

    def test_extrapolation_rule(self):
        # alpha = gamma / 8.8 * 37.92  (paper equation 4)
        alpha = extrapolate_time_ms(17.6)
        assert abs(alpha - 17.6 / 8.8 * STRONGARM_SA1110.modexp_ms) < 1e-9
        assert abs(energy_mj_from_time(alpha) - 18.2) < 0.02

    def test_clock_scaling(self):
        assert abs(scale_by_clock(20.0, PENTIUM_III_1GHZ, PENTIUM_III_450) - 44.444) < 0.01

    def test_reference_cpus_have_no_power_model(self):
        with pytest.raises(EnergyModelError):
            PENTIUM_III_450.energy_mj(10.0)

    def test_negative_time_rejected(self):
        with pytest.raises(EnergyModelError):
            extrapolate_time_ms(-1.0)


class TestOperationCostTable:
    def test_reproduces_paper_table2(self):
        table = OperationCostTable()
        for operation, paper_mj in PAPER_TABLE2_ENERGY_MJ.items():
            ours = table.energy_mj(operation)
            assert abs(ours - paper_mj) / paper_mj < 0.03, (operation, ours, paper_mj)

    def test_map_to_point_derived_from_ibe_difference(self):
        timings = derive_piii450_timings()
        assert abs(timings["map_to_point"] - (35 - 27) * 1000 / 450) < 0.01
        assert abs(timings["tate_pairing"] - 20 * 1000 / 450) < 0.01

    def test_symmetric_and_hash_are_negligible(self):
        table = OperationCostTable()
        assert table.energy_mj("symmetric") < 0.1 * table.energy_mj("modexp")
        assert table.energy_mj("hash") < table.energy_mj("symmetric") + 1e-9
        assert table.time_ms("symmetric") > 0

    def test_unknown_operation_rejected(self):
        table = OperationCostTable()
        with pytest.raises(EnergyModelError):
            table.energy_mj("quantum_annealing")
        with pytest.raises(EnergyModelError):
            table.signature_operation("rsa", "gen")
        with pytest.raises(EnergyModelError):
            table.signature_operation("gq", "make")

    def test_energy_j_scaling(self):
        table = OperationCostTable()
        assert abs(table.energy_j("modexp", 1000) - 9.1) < 0.01
        with pytest.raises(EnergyModelError):
            table.energy_j("modexp", -1)

    def test_as_table_shape(self):
        rows = OperationCostTable().as_table()
        assert "sign_ver_sok" in rows
        assert set(rows["modexp"]) == {"strongarm_mj", "strongarm_ms", "piii450_ms"}

    def test_signature_operation_mapping(self):
        table = OperationCostTable()
        assert table.signature_operation("gq", "gen") == "sign_gen_gq"
        assert table.signature_operation("ecdsa", "ver") == "sign_ver_ecdsa"


class TestTransceivers:
    def test_paper_per_bit_constants(self):
        assert RADIO_100KBPS.tx_uj_per_bit == 10.8
        assert RADIO_100KBPS.rx_uj_per_bit == 7.51
        assert WLAN_SPECTRUM24.tx_uj_per_bit == 0.66
        assert WLAN_SPECTRUM24.rx_uj_per_bit == 0.31

    def test_energy_scaling(self):
        assert abs(RADIO_100KBPS.tx_energy_mj(2104) - 22.72) < 0.01
        assert abs(WLAN_SPECTRUM24.rx_energy_mj(2104) - 0.652) < 0.01
        with pytest.raises(EnergyModelError):
            RADIO_100KBPS.tx_energy_mj(-1)

    def test_airtime(self):
        assert abs(RADIO_100KBPS.airtime_ms(100_000) - 1000.0) < 1e-9

    def test_lookup(self):
        assert get_transceiver("wlan") is WLAN_SPECTRUM24
        with pytest.raises(EnergyModelError):
            get_transceiver("5g")


class TestCommunicationCostTable:
    def test_reproduces_paper_table3(self):
        table = CommunicationCostTable()
        for key, paper_mj in PAPER_TABLE3_MJ.items():
            ours = table.cost_mj(*key)
            assert abs(ours - paper_mj) <= max(0.02, 0.02 * paper_mj), (key, ours, paper_mj)

    def test_per_bit_rows(self):
        rows = CommunicationCostTable().per_bit_rows()
        assert rows[("tx", "100kbps")] == 10.8
        assert rows[("rx", "wlan")] == 0.31

    def test_unknown_entries_rejected(self):
        table = CommunicationCostTable()
        with pytest.raises(EnergyModelError):
            table.cost_mj("tls_handshake", "tx", "wlan")
        with pytest.raises(EnergyModelError):
            table.cost_mj("gq_signature", "sideways", "wlan")
        with pytest.raises(EnergyModelError):
            table.cost_mj("gq_signature", "tx", "zigbee")

    def test_full_table_coverage(self):
        table = CommunicationCostTable().as_table()
        assert len(table) == 6 * 2 * 2


class TestCostRecorderAndProfiles:
    def test_recording_and_snapshot(self):
        recorder = CostRecorder("node")
        recorder.record_operation("modexp", 3)
        recorder.record_signature("gq", "gen")
        recorder.record_tx(1000)
        recorder.record_rx(2000, messages=2)
        snap = recorder.snapshot()
        assert snap["modexp"] == 3 and snap["sign_gen_gq"] == 1
        assert snap["tx_bits"] == 1000 and snap["rx_bits"] == 2000
        assert recorder.messages_sent == 1 and recorder.messages_received == 2
        assert recorder.operation_count("modexp") == 3
        assert recorder.operation_count("missing") == 0

    def test_invalid_recordings(self):
        recorder = CostRecorder()
        with pytest.raises(EnergyModelError):
            recorder.record_operation("modexp", -1)
        with pytest.raises(EnergyModelError):
            recorder.record_signature("gq", "neither")
        with pytest.raises(EnergyModelError):
            recorder.record_tx(-5)
        with pytest.raises(EnergyModelError):
            recorder.record_rx(-5)

    def test_merge(self):
        a, b = CostRecorder("a"), CostRecorder("b")
        a.record_operation("modexp", 1)
        b.record_operation("modexp", 2)
        a.record_tx(10)
        b.record_rx(20)
        merged = a.merge(b)
        assert merged.operation_count("modexp") == 3
        assert merged.tx_bits == 10 and merged.rx_bits == 20

    def test_profile_pricing_matches_hand_computation(self):
        recorder = CostRecorder("node")
        recorder.record_operation("modexp", 3)
        recorder.record_signature("gq", "gen")
        recorder.record_signature("gq", "ver")
        recorder.record_tx(4160)
        recorder.record_rx(4160 * 9)
        profile = DeviceProfile(transceiver=WLAN_SPECTRUM24)
        breakdown = profile.price(recorder)
        expected_comp = (3 * 9.1 + 18.2 + 18.2) / 1000.0
        assert abs(breakdown.computation_j - expected_comp) < 0.001
        assert abs(breakdown.tx_j - 4160 * 0.66e-6) < 1e-9
        assert abs(breakdown.rx_j - 4160 * 9 * 0.31e-6) < 1e-9
        assert abs(breakdown.total_j - (breakdown.computation_j + breakdown.communication_j)) < 1e-12
        assert breakdown.per_operation_j["modexp"] == pytest.approx(3 * 9.1 / 1000.0, rel=1e-6)

    def test_profile_transceiver_swap(self):
        recorder = CostRecorder("node")
        recorder.record_rx(10_000)
        wlan = DeviceProfile(transceiver=WLAN_SPECTRUM24)
        radio = wlan.with_transceiver(RADIO_100KBPS)
        assert radio.total_j(recorder) > wlan.total_j(recorder)
        assert radio.cpu is wlan.cpu
