"""Crypto-backend registry, selection plumbing and primitive parity."""

from __future__ import annotations

import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    CryptoBackend,
    PureBackend,
    active_backend,
    available_backends,
    create_backend,
    native_available,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.backends import registry as backend_registry
from repro.campaign import CampaignSpec
from repro.engine import EngineConfig
from repro.exceptions import ParameterError
from repro.mathutils.rand import DeterministicRNG
from repro.sim.specio import build_engine, engine_to_spec


@pytest.fixture(autouse=True)
def _reset_default():
    """Keep the process-wide default untouched by these tests."""
    yield
    backend_registry._DEFAULT = None


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == ["native", "pure"]
        assert {"python", "reference", "gmpy2", "gmp"} <= set(
            available_backends(include_aliases=True)
        )

    def test_aliases_resolve_to_canonical(self):
        assert resolve_backend("python") == "pure"
        assert resolve_backend("reference") == "pure"
        assert resolve_backend("gmpy2") == "native"

    def test_unknown_name_suggests(self):
        with pytest.raises(ParameterError, match="did you mean 'native'"):
            resolve_backend("nativ")
        with pytest.raises(ParameterError, match="available"):
            resolve_backend("openssl")

    def test_instances_are_shared(self):
        assert create_backend("pure") is create_backend("python")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError):
            register_backend("pure", PureBackend)

    def test_native_fallback_vs_strict(self):
        backend = create_backend("native")
        if native_available():
            assert backend.name == "native"
        else:
            # Graceful degradation: the instance tells the truth.
            assert backend.name == "pure"
            with pytest.raises(ParameterError):
                backend_registry._INSTANCES.pop("native", None)
                try:
                    create_backend("native", strict=True)
                finally:
                    backend_registry._INSTANCES.pop("native", None)


class TestSelection:
    def test_default_is_pure(self):
        backend_registry._DEFAULT = None
        assert active_backend().name in {"pure", "native"}
        assert isinstance(active_backend(), CryptoBackend)

    def test_env_var_sets_initial_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "pure")
        backend_registry._DEFAULT = None
        assert active_backend() is create_backend("pure")

    def test_env_var_with_alias(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        backend_registry._DEFAULT = None
        assert active_backend() is create_backend("pure")

    def test_set_default_backend(self):
        assert set_default_backend("pure") is create_backend("pure")
        assert active_backend() is create_backend("pure")
        set_default_backend(None)

    def test_use_backend_nests_and_restores(self):
        outer = active_backend()
        with use_backend("pure") as first:
            assert active_backend() is first
            with use_backend("native") as second:
                assert active_backend() is second
            assert active_backend() is first
        assert active_backend() is outer

    def test_use_backend_none_is_passthrough(self):
        before = active_backend()
        with use_backend(None) as inside:
            assert inside is before
            assert active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert active_backend() is before


class TestPrimitiveParity:
    """Every backend must be bit-identical to pure on the primitive surface."""

    MOD = (1 << 127) - 1  # prime

    @pytest.fixture()
    def impl(self, backend):
        return active_backend()

    def test_modexp(self, impl):
        pure = create_backend("pure")
        rng = DeterministicRNG("modexp-parity")
        for _ in range(20):
            base = rng.randbelow(self.MOD)
            exponent = rng.randbelow(1 << 80)
            assert impl.modexp(base, exponent, self.MOD) == pure.modexp(
                base, exponent, self.MOD
            )
        assert impl.modexp(5, 0, 97) == 1
        assert impl.modexp(5, -1, 97) == pure.modinv(5, 97)
        with pytest.raises(ParameterError):
            impl.modexp(5, 3, 0)

    def test_modinv(self, impl):
        for a in (1, 2, 96, 12345):
            inverse = impl.modinv(a, 97)
            assert (inverse * a) % 97 == 1
        with pytest.raises(ParameterError):
            impl.modinv(0, 97)
        with pytest.raises(ParameterError):
            impl.modinv(6, 9)  # gcd 3

    def test_multi_exp(self, impl):
        pure = create_backend("pure")
        rng = DeterministicRNG("multiexp-parity")
        bases = [rng.randbelow(self.MOD) for _ in range(5)]
        exponents = [rng.randbelow(1 << 64) - (1 << 63) for _ in range(5)]
        exponents[2] = 0
        assert impl.multi_exp(bases, exponents, self.MOD) == pure.multi_exp(
            bases, exponents, self.MOD
        )

    def test_fixed_base(self, impl):
        rng = DeterministicRNG("fixed-base-parity")
        table = impl.fixed_base(3, self.MOD, 80)
        for _ in range(10):
            exponent = rng.randbelow(1 << 80)
            assert table.pow(exponent) == pow(3, exponent, self.MOD)
        with pytest.raises(ParameterError):
            table.pow(-1)


class TestEnginePlumbing:
    def test_engine_config_validates_backend(self):
        with pytest.raises(ParameterError):
            EngineConfig(crypto_backend="no-such-backend")
        config = EngineConfig(crypto_backend="pure")
        assert "backend=pure" in config.describe()

    def test_engine_spec_round_trip(self):
        spec = {"latency": "instant", "crypto_backend": "pure"}
        config = build_engine(spec)
        assert config is not None and config.crypto_backend == "pure"
        assert engine_to_spec(config) == spec

    def test_engine_spec_without_backend_unchanged(self):
        assert build_engine("instant") is None
        assert engine_to_spec(None) == "instant"


class TestRunEquivalence:
    def test_scenario_bit_identical_across_backends(self, small_setup):
        """Same protocol run, every backend: identical keys and ledgers.

        On machines without gmpy2 the ``native`` leg degrades to pure (and so
        trivially agrees); with gmpy2 installed this pins the bit-identity
        guarantee the golden equivalence fixtures rely on.
        """
        from repro.sim import Scenario, ScenarioRunner

        runner = ScenarioRunner(small_setup, check_agreement=False)
        scenario = Scenario(name="backend-eq", initial_size=5, seed="beq")
        reports = []
        for name in available_backends():
            with use_backend(name):
                reports.append(runner.run("bd-dsa", scenario))
        assert len({report.key_fingerprint for report in reports}) == 1
        assert len({report.total_energy_j for report in reports}) == 1

    def test_engine_config_backend_scopes_the_run(self, small_setup):
        from repro.sim import Scenario, ScenarioRunner

        scenario = Scenario(name="backend-eq-cfg", initial_size=4, seed="beq2")
        plain = ScenarioRunner(small_setup, check_agreement=False).run("bd-dsa", scenario)
        scoped = ScenarioRunner(
            small_setup, engine=EngineConfig(crypto_backend="native"), check_agreement=False
        ).run("bd-dsa", scenario)
        assert scoped.key_fingerprint == plain.key_fingerprint


class TestCampaignPlumbing:
    def test_spec_accepts_backend(self):
        spec = CampaignSpec(name="b", protocols=("bd",), backend="pure")
        cells = spec.cells()
        assert all(cell.payload["backend"] == "pure" for cell in cells)
        assert spec.to_dict()["backend"] == "pure"
        assert CampaignSpec.from_dict(spec.to_dict()).backend == "pure"

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ParameterError):
            CampaignSpec(name="b", protocols=("bd",), backend="no-such")

    def test_backend_is_not_an_axis(self):
        with_backend = CampaignSpec(name="b", protocols=("bd",), backend="pure")
        without = CampaignSpec(name="b", protocols=("bd",))
        assert [c.key for c in with_backend.cells()] == [c.key for c in without.cells()]
        assert [c.axes for c in with_backend.cells()] == [c.axes for c in without.cells()]
