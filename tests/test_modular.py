"""Unit and property tests for :mod:`repro.mathutils.modular`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.mathutils.modular import (
    crt,
    egcd,
    gcd,
    int_nth_root,
    is_perfect_square,
    is_quadratic_residue,
    jacobi,
    lcm,
    legendre,
    modexp,
    modinv,
    product_mod,
)


class TestEgcd:
    def test_basic_identity(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_zero_arguments(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(7, 0)[0] == 7
        assert egcd(0, 0)[0] == 0

    def test_negative_arguments(self):
        g, x, y = egcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6

    @given(st.integers(min_value=0, max_value=10**30), st.integers(min_value=0, max_value=10**30))
    def test_matches_math_gcd(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    def test_small_inverse(self):
        assert modinv(3, 11) == 4

    def test_inverse_roundtrip(self):
        n = 2**61 - 1
        for a in (2, 12345, n - 2):
            inv = modinv(a, n)
            assert (a * inv) % n == 1

    def test_no_inverse_raises(self):
        with pytest.raises(ParameterError):
            modinv(6, 9)

    def test_zero_modulus_raises(self):
        with pytest.raises(ParameterError):
            modinv(1, 0)

    @given(st.integers(min_value=1, max_value=10**18))
    def test_inverse_modulo_prime(self, a):
        p = 2_305_843_009_213_693_951  # Mersenne prime 2^61 - 1
        a = a % p or 1
        assert (a * modinv(a, p)) % p == 1


class TestModexp:
    def test_matches_builtin_pow(self):
        assert modexp(3, 100, 101) == pow(3, 100, 101)

    def test_negative_exponent(self):
        p = 101
        assert modexp(3, -1, p) == modinv(3, p)
        assert (modexp(5, -7, p) * pow(5, 7, p)) % p == 1

    def test_invalid_modulus(self):
        with pytest.raises(ParameterError):
            modexp(2, 3, 0)

    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=2000),
    )
    def test_agrees_with_pow(self, base, exponent):
        modulus = 1_000_003
        assert modexp(base, exponent, modulus) == pow(base, exponent, modulus)


class TestCrt:
    def test_two_congruences(self):
        x = crt([2, 3], [3, 5])
        assert x % 3 == 2 and x % 5 == 3

    def test_three_congruences(self):
        x = crt([1, 2, 3], [5, 7, 11])
        assert x % 5 == 1 and x % 7 == 2 and x % 11 == 3

    def test_non_coprime_raises(self):
        with pytest.raises(ParameterError):
            crt([1, 2], [4, 6])

    def test_length_mismatch_raises(self):
        with pytest.raises(ParameterError):
            crt([1, 2], [5])

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            crt([], [])

    @given(st.integers(min_value=0, max_value=10**9))
    def test_recombination_roundtrip(self, x):
        p, q = 10_007, 10_009
        x %= p * q
        assert crt([x % p, x % q], [p, q]) == x


class TestJacobiLegendre:
    def test_quadratic_residues_mod_prime(self):
        p = 23
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert jacobi(a, p) == expected
            assert legendre(a, p) == expected
            assert is_quadratic_residue(a, p) == (a in residues)

    def test_zero_is_not_residue(self):
        assert jacobi(0, 17) == 0
        assert not is_quadratic_residue(0, 17)

    def test_even_modulus_raises(self):
        with pytest.raises(ParameterError):
            jacobi(3, 10)

    def test_multiplicativity(self):
        n = 9907  # odd prime
        for a, b in [(2, 3), (5, 11), (123, 456)]:
            assert jacobi(a * b, n) == jacobi(a, n) * jacobi(b, n)


class TestProductMod:
    def test_simple_product(self):
        assert product_mod([2, 3, 4], 100) == 24

    def test_reduction(self):
        assert product_mod([10, 10, 10], 7) == 1000 % 7

    def test_empty_product_is_one(self):
        assert product_mod([], 13) == 1

    def test_invalid_modulus(self):
        with pytest.raises(ParameterError):
            product_mod([1, 2], 0)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=30))
    def test_matches_naive(self, values):
        modulus = 1_000_000_007
        naive = 1
        for v in values:
            naive = (naive * v) % modulus
        assert product_mod(values, modulus) == naive


class TestRootsAndSquares:
    def test_nth_root_exact(self):
        assert int_nth_root(27, 3) == 3
        assert int_nth_root(1 << 100, 2) == 1 << 50

    def test_nth_root_floor(self):
        assert int_nth_root(26, 3) == 2
        assert int_nth_root(2, 10) == 1

    def test_nth_root_edge_cases(self):
        assert int_nth_root(0, 5) == 0
        assert int_nth_root(1, 5) == 1

    def test_nth_root_invalid(self):
        with pytest.raises(ParameterError):
            int_nth_root(-1, 2)
        with pytest.raises(ParameterError):
            int_nth_root(4, 0)

    def test_perfect_square(self):
        assert is_perfect_square(144)
        assert not is_perfect_square(145)
        assert not is_perfect_square(-4)

    @given(st.integers(min_value=0, max_value=10**20), st.integers(min_value=1, max_value=6))
    def test_root_bounds(self, x, n):
        r = int_nth_root(x, n)
        assert r**n <= x < (r + 1) ** n


class TestGcdLcm:
    def test_gcd(self):
        assert gcd(12, 18) == 6

    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0

    @given(st.integers(min_value=1, max_value=10**12), st.integers(min_value=1, max_value=10**12))
    def test_gcd_lcm_product(self, a, b):
        assert gcd(a, b) * lcm(a, b) == a * b
