"""Tests for the hashing substrate: SHA-256, H, HMAC and the KDF."""

from __future__ import annotations

import hashlib
import hmac as std_hmac
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.hashing.hashfuncs import HashFunction, default_hash
from repro.hashing.hmac_impl import hmac_sha256, verify_hmac
from repro.hashing.kdf import derive_key, derive_key_from_group_element, hkdf_expand, hkdf_extract
from repro.hashing.sha256 import PureSHA256, sha256_digest


class TestPureSHA256:
    def test_empty_vector(self):
        assert (
            PureSHA256(b"").hexdigest()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc_vector(self):
        assert (
            PureSHA256(b"abc").hexdigest()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_vector(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            PureSHA256(message).hexdigest()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_incremental_equals_one_shot(self):
        data = bytes(range(256)) * 5
        h = PureSHA256()
        for offset in range(0, len(data), 17):
            h.update(data[offset : offset + 17])
        assert h.digest() == PureSHA256(data).digest()

    def test_digest_does_not_finalise_state(self):
        h = PureSHA256(b"hello")
        first = h.digest()
        assert h.digest() == first
        h.update(b" world")
        assert h.digest() == PureSHA256(b"hello world").digest()

    def test_copy_is_independent(self):
        h = PureSHA256(b"base")
        clone = h.copy()
        clone.update(b"more")
        assert h.digest() == PureSHA256(b"base").digest()
        assert clone.digest() == PureSHA256(b"basemore").digest()

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            PureSHA256().update("text")  # type: ignore[arg-type]

    @given(st.binary(max_size=500))
    @settings(max_examples=50)
    def test_matches_hashlib(self, data):
        assert sha256_digest(data) == hashlib.sha256(data).digest()


class TestHMAC:
    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        assert hmac_sha256(key, data).hex() == expected

    def test_rfc4231_long_key(self):
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        expected = "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        assert hmac_sha256(key, data).hex() == expected

    def test_verify_helpers(self):
        tag = hmac_sha256(b"k", b"m")
        assert verify_hmac(b"k", b"m", tag)
        assert not verify_hmac(b"k", b"m2", tag)
        assert not verify_hmac(b"k2", b"m", tag)
        assert not verify_hmac(b"k", b"m", tag[:-1])

    @given(st.binary(max_size=100), st.binary(max_size=300))
    @settings(max_examples=50)
    def test_matches_stdlib(self, key, message):
        assert hmac_sha256(key, message) == std_hmac.new(key, message, hashlib.sha256).digest()


class TestHashFunction:
    def test_output_bits_respected(self):
        for bits in (80, 128, 160, 161, 256):
            h = HashFunction(output_bits=bits)
            digest_int = h.digest_int(b"data")
            assert digest_int < 2**bits
            assert len(h.digest(b"data")) == (bits + 7) // 8

    def test_invalid_output_bits(self):
        with pytest.raises(ParameterError):
            HashFunction(output_bits=0)
        with pytest.raises(ParameterError):
            HashFunction(output_bits=100000)

    def test_domain_separation(self):
        h = HashFunction()
        assert h.digest(b"x", domain=b"a") != h.digest(b"x", domain=b"b")
        assert h.challenge(b"x") != h.digest_int(b"x")

    def test_deterministic(self):
        assert HashFunction().digest(b"a", b"b") == HashFunction().digest(b"a", b"b")

    def test_field_boundaries_matter(self):
        h = HashFunction()
        assert h.digest(b"ab", b"c") != h.digest(b"a", b"bc")

    def test_identity_to_zn_coprime(self):
        h = default_hash()
        n = 3 * 5 * 7 * 11 * 13 * 17 * 19 * 23
        for identity in (b"alice", b"bob", b"carol"):
            value = h.identity_to_zn(identity, n)
            assert 2 <= value < n
            assert math.gcd(value, n) == 1

    def test_identity_to_zn_small_modulus_raises(self):
        with pytest.raises(ParameterError):
            default_hash().identity_to_zn(b"x", 3)

    def test_hash_to_zq(self):
        h = default_hash()
        q = 101
        assert 0 <= h.hash_to_zq(b"m", q=q) < q
        with pytest.raises(ParameterError):
            h.hash_to_zq(b"m", q=1)

    def test_map_to_point_index_nonzero(self):
        h = default_hash()
        for identity in (b"a", b"b", b"c", b"d"):
            assert 1 <= h.map_to_point_index(identity, 97) < 97

    def test_callable_alias(self):
        h = default_hash()
        assert h(b"msg") == h.digest(b"msg")


class TestKDF:
    def test_hkdf_deterministic_and_length(self):
        prk = hkdf_extract(b"salt", b"ikm")
        out = hkdf_expand(prk, b"info", 42)
        assert len(out) == 42
        assert out == hkdf_expand(prk, b"info", 42)
        assert out != hkdf_expand(prk, b"other", 42)

    def test_hkdf_expand_limits(self):
        prk = hkdf_extract(b"", b"ikm")
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"", 0)
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"", 255 * 32 + 1)

    def test_derive_key_lengths(self):
        assert len(derive_key(b"secret")) == 16
        assert len(derive_key(b"secret", length=32)) == 32
        assert derive_key(b"secret", info=b"a") != derive_key(b"secret", info=b"b")

    def test_derive_from_group_element(self):
        key = derive_key_from_group_element(12345678901234567890)
        assert len(key) == 16
        assert key == derive_key_from_group_element(12345678901234567890)
        assert key != derive_key_from_group_element(12345678901234567891)
        with pytest.raises(ParameterError):
            derive_key_from_group_element(0)
