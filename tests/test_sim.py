"""The protocol registry and the scenario/churn simulation engine."""

from __future__ import annotations

import pytest

from repro.core import ProposedGKAProtocol, SystemSetup, available_protocols, create_protocol
from repro.core.base import Protocol
from repro.exceptions import ParameterError, ProtocolError
from repro.network.events import JoinEvent, LeaveEvent, MergeEvent, PartitionEvent, membership_after
from repro.pki import Identity
from repro.sim import (
    BurstPartitions,
    PeriodicMerges,
    PoissonChurn,
    Scenario,
    ScenarioRunner,
    TraceReplay,
    comparison_table,
)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_protocols()
        for expected in ("proposed-gka", "bd-unauthenticated", "bd-sok", "bd-ecdsa", "bd-dsa", "ssn"):
            assert expected in names

    def test_aliases_resolve_to_canonical_protocols(self, small_setup):
        protocol = create_protocol("proposed", small_setup)
        assert isinstance(protocol, ProposedGKAProtocol)
        assert create_protocol("bd", small_setup).name == "bd-unauthenticated"

    def test_bd_rerun_wrappers_registered_under_their_own_names(self, small_setup):
        rerun = create_protocol("bd-rerun-dsa", small_setup)
        assert rerun.name == "bd-rerun-dsa"
        assert rerun.supported_events == frozenset()
        members = [Identity(f"rr{i}") for i in range(4)]
        result = rerun.run(members, seed=5)
        assert result.all_agree()

    def test_unknown_name_raises_with_available_list(self, small_setup):
        with pytest.raises(ParameterError, match="unknown protocol"):
            create_protocol("nope", small_setup)

    def test_every_builtin_conforms_to_the_interface(self, small_setup):
        for name in ("proposed-gka", "bd-unauthenticated", "ssn", "bd-dsa"):
            protocol = create_protocol(name, small_setup)
            assert isinstance(protocol, Protocol)
            assert protocol.name == name
            assert protocol.supported_events <= {"join", "leave", "merge", "partition"}

    def test_supported_events_reflect_native_dynamics(self, small_setup):
        proposed = create_protocol("proposed", small_setup)
        assert proposed.supported_events == {"join", "leave", "merge", "partition"}
        assert proposed.handles_natively(JoinEvent(joining=Identity("x")))
        baseline = create_protocol("bd", small_setup)
        assert baseline.supported_events == frozenset()
        assert not baseline.handles_natively(JoinEvent(joining=Identity("x")))


class TestMembershipAfter:
    def test_all_event_kinds(self):
        members = [Identity(f"m{i}") for i in range(5)]
        after = membership_after(members, JoinEvent(joining=Identity("new")))
        assert [m.name for m in after] == ["m0", "m1", "m2", "m3", "m4", "new"]
        after = membership_after(members, LeaveEvent(leaving=members[2]))
        assert [m.name for m in after] == ["m0", "m1", "m3", "m4"]
        after = membership_after(members, MergeEvent(other_group=(Identity("a"), Identity("b"))))
        assert len(after) == 7
        after = membership_after(members, PartitionEvent(leaving=(members[1], members[3])))
        assert [m.name for m in after] == ["m0", "m2", "m4"]


class TestSchedules:
    def _members(self, n=8):
        return [Identity(f"m{i}") for i in range(n)]

    def test_scenario_expansion_is_deterministic(self):
        scenario = Scenario(
            name="det",
            initial_size=8,
            schedule=PoissonChurn(length=15, join_rate=2, leave_rate=2, merge_rate=1, partition_rate=1),
            seed=42,
        )
        first, second = scenario.build_events(), scenario.build_events()
        assert [(e.time, e.kind) for e in first] == [(e.time, e.kind) for e in second]
        assert len(first) == 15

    def test_poisson_times_are_increasing(self):
        scenario = Scenario(
            name="clock", initial_size=6, schedule=PoissonChurn(length=20), seed=1
        )
        times = [e.time for e in scenario.build_events()]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 0

    def test_different_seeds_differ(self):
        scenario = Scenario(name="s", initial_size=6, schedule=PoissonChurn(length=20), seed=1)
        other = scenario.with_seed(2)
        assert [e.time for e in scenario.build_events()] != [e.time for e in other.build_events()]

    def test_burst_partitions_respect_min_group_size_and_refill(self):
        schedule = BurstPartitions(bursts=4, burst_size=3, period=5.0, refill=True)
        scenario = Scenario(name="b", initial_size=10, schedule=schedule, seed=3)
        members = scenario.initial_members()
        for scheduled in scenario.build_events():
            if scheduled.kind == "partition":
                controller = members[0].name
                assert all(m.name != controller for m in scheduled.event.leaving)
            members = membership_after(members, scheduled.event)
            assert len(members) >= scenario.min_group_size
        kinds = [e.kind for e in scenario.build_events()]
        assert kinds.count("partition") == 4 and kinds.count("merge") == 4

    def test_periodic_merges_grow_the_group(self):
        scenario = Scenario(
            name="m", initial_size=4, schedule=PeriodicMerges(merges=3, merge_size=3), seed=0
        )
        events = scenario.build_events()
        assert [e.kind for e in events] == ["merge"] * 3
        assert all(len(e.event.other_group) == 3 for e in events)

    def test_trace_replay_keeps_order_and_spacing(self):
        trace = (JoinEvent(joining=Identity("a")), LeaveEvent(leaving=Identity("m1")))
        scenario = Scenario(
            name="t", initial_size=5, schedule=TraceReplay(events=trace, spacing=2.5), seed=0
        )
        events = scenario.build_events()
        assert [e.kind for e in events] == ["join", "leave"]
        assert [e.time for e in events] == [2.5, 5.0]

    def test_degenerate_scenarios_rejected(self):
        with pytest.raises(ParameterError):
            Scenario(name="tiny", initial_size=1, schedule=PoissonChurn(length=1))
        with pytest.raises(ParameterError):
            PoissonChurn(length=5, join_rate=0, leave_rate=0).generate(self._members(), None)


class TestScenarioRunner:
    @pytest.fixture(scope="class")
    def churn_scenario(self):
        return Scenario(
            name="mixed-churn",
            initial_size=8,
            schedule=PoissonChurn(
                length=10, join_rate=2, leave_rate=2, merge_rate=0.7, partition_rate=0.7
            ),
            seed="runner-test",
        )

    @pytest.fixture(scope="class")
    def reports(self, small_setup, churn_scenario):
        runner = ScenarioRunner(small_setup)
        return runner.run_all(["proposed", "bd", "ssn"], churn_scenario)

    def test_all_protocols_complete_with_agreement_after_every_event(self, reports):
        for report in reports:
            assert report.agreed_throughout
            assert len(report.records) == 11  # establishment + 10 events
            assert all(record.agreed for record in report.records)

    def test_reports_are_comparable(self, reports):
        assert {r.scenario_name for r in reports} == {"mixed-churn"}
        table = comparison_table(reports)
        for name in ("proposed-gka", "bd-unauthenticated", "ssn"):
            assert name in table
        # Identical event stream for every protocol.
        streams = [[(rec.kind, rec.time) for rec in r.records] for r in reports]
        assert streams[0] == streams[1] == streams[2]

    def test_every_step_costs_energy_and_messages(self, reports):
        for report in reports:
            for record in report.records:
                assert record.total_energy_j > 0
                assert record.messages > 0
                assert record.bits > 0
                assert record.group_size >= 3

    def test_aggregates_are_consistent(self, reports):
        for report in reports:
            by_kind = report.by_kind()
            assert sum(s.count for s in by_kind.values()) == len(report.records)
            assert sum(s.total_energy_j for s in by_kind.values()) == pytest.approx(
                report.total_energy_j
            )
            assert sum(s.total_messages for s in by_kind.values()) == report.total_messages
            per_member = report.per_member_energy_j()
            assert sum(per_member.values()) == pytest.approx(report.total_energy_j)

    def test_proposed_dynamic_events_cost_less_than_baseline_reruns(self, reports):
        proposed, bd = reports[0], reports[1]
        # Joins under the proposed protocol are O(1) public-key work; the
        # rerun baseline pays a whole GKA.  (This is the paper's Table 5 gap.)
        proposed_join = proposed.by_kind().get("join")
        bd_join = bd.by_kind().get("join")
        assert proposed_join is not None and bd_join is not None
        assert proposed_join.mean_energy_j < bd_join.mean_energy_j

    def test_lossy_scenario_charges_retries(self, small_setup, churn_scenario):
        import dataclasses

        lossy = dataclasses.replace(churn_scenario, name="lossy", loss_probability=0.25)
        report = ScenarioRunner(small_setup).run("bd", lossy)
        assert report.agreed_throughout
        assert report.total_bits(include_retries=True) > report.total_bits()

    def test_comparison_table_rejects_mixed_scenarios(self, small_setup, reports):
        other = Scenario(
            name="different", initial_size=4, schedule=PoissonChurn(length=2), seed=0
        )
        mismatched = ScenarioRunner(small_setup).run("bd", other)
        with pytest.raises(ParameterError, match="different scenarios"):
            comparison_table([reports[0], mismatched])

    def test_runner_accepts_protocol_instances(self, small_setup):
        scenario = Scenario(
            name="inst", initial_size=5, schedule=PoissonChurn(length=3), seed=4
        )
        report = ScenarioRunner(small_setup).run(
            ProposedGKAProtocol(small_setup), scenario
        )
        assert report.protocol == "proposed-gka"
        assert report.agreed_throughout
