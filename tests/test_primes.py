"""Unit and property tests for :mod:`repro.mathutils.primes`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.mathutils.primes import (
    RSAModulus,
    SMALL_PRIMES,
    generate_rsa_modulus,
    generate_schnorr_parameters,
    is_probable_prime,
    miller_rabin,
    next_prime,
    random_prime,
    random_safe_prime,
)
from repro.mathutils.rand import DeterministicRNG


def _naive_is_prime(n: int) -> bool:
    if n < 2:
        return False
    for d in range(2, int(n**0.5) + 1):
        if n % d == 0:
            return False
    return True


class TestPrimalityTest:
    def test_small_values(self):
        for n in range(-5, 200):
            assert is_probable_prime(n) == _naive_is_prime(n), n

    def test_known_large_prime(self):
        assert is_probable_prime(2**61 - 1)
        assert not is_probable_prime(2**61 + 1)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 41041, 825265):
            assert not is_probable_prime(carmichael)

    def test_sieve_contents(self):
        assert SMALL_PRIMES[:10] == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)
        assert all(_naive_is_prime(p) for p in SMALL_PRIMES[:100])

    def test_miller_rabin_single_round(self):
        assert miller_rabin(97, 2)
        assert not miller_rabin(91, 2)  # 91 = 7 * 13, 2 is a witness

    @given(st.integers(min_value=3, max_value=100000))
    def test_matches_naive(self, n):
        assert is_probable_prime(n) == _naive_is_prime(n)


class TestNextPrime:
    def test_basic(self):
        assert next_prime(10) == 11
        assert next_prime(11) == 13
        assert next_prime(0) == 2
        assert next_prime(2) == 3

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_result_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_probable_prime(p)


class TestRandomPrime:
    def test_exact_bit_length(self):
        rng = DeterministicRNG(1)
        for bits in (8, 16, 32, 64, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_for_seed(self):
        assert random_prime(64, DeterministicRNG(7)) == random_prime(64, DeterministicRNG(7))

    def test_too_small_raises(self):
        with pytest.raises(ParameterError):
            random_prime(1, DeterministicRNG(0))

    def test_safe_prime(self):
        rng = DeterministicRNG(3)
        p = random_safe_prime(32, rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 32


class TestSchnorrParameters:
    def test_structure(self):
        rng = DeterministicRNG("schnorr-test")
        p, q, g = generate_schnorr_parameters(128, 32, rng)
        assert p.bit_length() == 128
        assert q.bit_length() == 32
        assert (p - 1) % q == 0
        assert pow(g, q, p) == 1
        assert g != 1
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_generator_has_order_q_not_one(self):
        rng = DeterministicRNG("schnorr-test-2")
        p, q, g = generate_schnorr_parameters(96, 32, rng)
        # g's order divides q and q is prime, so order is exactly q unless g == 1.
        assert pow(g, 1, p) != 1

    def test_invalid_sizes(self):
        with pytest.raises(ParameterError):
            generate_schnorr_parameters(64, 64, DeterministicRNG(0))

    def test_deterministic(self):
        a = generate_schnorr_parameters(96, 32, DeterministicRNG("same"))
        b = generate_schnorr_parameters(96, 32, DeterministicRNG("same"))
        assert a == b


class TestRSAModulus:
    def test_structure_and_validation(self):
        modulus = generate_rsa_modulus(128, DeterministicRNG("rsa-test"))
        modulus.validate()
        assert modulus.n == modulus.p * modulus.q
        assert modulus.bits == 128
        assert math.gcd(modulus.e, modulus.phi) == 1
        assert (modulus.e * modulus.d) % modulus.phi == 1

    def test_rsa_trapdoor_roundtrip(self):
        modulus = generate_rsa_modulus(96, DeterministicRNG("rsa-roundtrip"))
        message = 0x1234567
        cipher = pow(message, modulus.e, modulus.n)
        assert pow(cipher, modulus.d, modulus.n) == message

    def test_custom_exponent(self):
        modulus = generate_rsa_modulus(96, DeterministicRNG("rsa-e3"), e=17)
        assert modulus.e == 17
        modulus.validate()

    def test_validation_catches_corruption(self):
        good = generate_rsa_modulus(96, DeterministicRNG("rsa-bad"))
        bad = RSAModulus(n=good.n + 2, p=good.p, q=good.q, e=good.e, d=good.d)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_too_small_raises(self):
        with pytest.raises(ParameterError):
            generate_rsa_modulus(8, DeterministicRNG(0))

    def test_deterministic(self):
        a = generate_rsa_modulus(96, DeterministicRNG("same-rsa"))
        b = generate_rsa_modulus(96, DeterministicRNG("same-rsa"))
        assert a == b
