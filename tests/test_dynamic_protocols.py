"""Integration tests for the dynamic protocols (Join, Leave, Merge, Partition),
the BD re-execution baseline, and the high-level GroupSession API."""

from __future__ import annotations

import pytest

from repro.baselines import BDRerunDynamic
from repro.core import (
    GroupSession,
    JoinProtocol,
    LeaveProtocol,
    MergeProtocol,
    PartitionProtocol,
    ProposedGKAProtocol,
)
from repro.exceptions import MembershipError, ParameterError, ProtocolError
from repro.network.events import JoinEvent, LeaveEvent, MergeEvent, PartitionEvent
from repro.pki import Identity


@pytest.fixture()
def established(small_setup):
    """An agreed 6-member group, re-established per test."""
    members = [Identity(f"dyn-{i:02d}") for i in range(6)]
    return ProposedGKAProtocol(small_setup).run(members, seed="dyn-base")


class TestJoinProtocol:
    def test_join_agreement_and_membership(self, small_setup, established):
        newcomer = Identity("newcomer")
        result = JoinProtocol(small_setup).run(established.state, newcomer, seed=1)
        assert result.all_agree()
        assert newcomer in result.state.ring
        assert result.state.size == established.state.size + 1
        assert result.state.ring.last() == newcomer

    def test_key_changes_after_join(self, small_setup, established):
        old_key = established.group_key
        result = JoinProtocol(small_setup).run(established.state, Identity("newcomer"), seed=2)
        assert result.group_key != old_key

    def test_bystanders_do_no_exponentiations(self, small_setup, established):
        established.state.reset_costs()
        result = JoinProtocol(small_setup).run(established.state, Identity("newcomer"), seed=3)
        ring = established.state.ring
        busy = {ring.controller().name, ring.last().name, "newcomer"}
        for name, recorder in result.state.recorders().items():
            if name in busy:
                assert recorder.operation_count("modexp") >= 1
            else:
                assert recorder.operation_count("modexp") == 0
                assert recorder.operation_count("symmetric") == 2

    def test_active_roles_cost_match_paper_counts(self, small_setup, established):
        established.state.reset_costs()
        result = JoinProtocol(small_setup).run(established.state, Identity("newcomer"), seed=4)
        recorders = result.state.recorders()
        controller = established.state.ring.controller().name
        last = established.state.ring.last().name
        assert recorders[controller].operation_count("modexp") == 2
        assert recorders[controller].operation_count("sign_ver_gq") == 1
        assert recorders[last].operation_count("modexp") == 1
        assert recorders[last].operation_count("sign_gen_gq") == 1
        assert recorders["newcomer"].operation_count("modexp") == 2
        assert recorders["newcomer"].operation_count("sign_gen_gq") == 1

    def test_double_join_rejected(self, small_setup, established):
        with pytest.raises(MembershipError):
            JoinProtocol(small_setup).run(established.state, established.state.ring.members[2])

    def test_join_requires_agreed_group(self, small_setup, established):
        established.state.party(established.state.ring.members[1]).group_key = None
        with pytest.raises(ParameterError):
            JoinProtocol(small_setup).run(established.state, Identity("newcomer"))


class TestLeaveProtocol:
    def test_leave_agreement(self, small_setup, established):
        leaving = established.state.ring.members[2]
        result = LeaveProtocol(small_setup).run(established.state, leaving, seed=1)
        assert result.all_agree()
        assert leaving not in result.state.ring
        assert result.state.size == established.state.size - 1

    def test_key_changes_and_departed_member_is_excluded(self, small_setup, established):
        leaving = established.state.ring.members[3]
        old_key = established.group_key
        departed_state = established.state.party(leaving)
        result = LeaveProtocol(small_setup).run(established.state, leaving, seed=2)
        assert result.group_key != old_key
        # The departed member's old view cannot be the new key and it is not
        # part of the new state.
        assert departed_state.group_key == old_key
        assert leaving.name not in result.state.parties

    def test_leave_of_even_and_odd_indexed_members(self, small_setup):
        # The dynamic protocols mutate member state in place, so each leave
        # starts from a freshly established group.
        for index in (1, 2):  # U_2 (even) and U_3 (odd)
            members = [Identity(f"oddeven-{index}-{i}") for i in range(6)]
            base = ProposedGKAProtocol(small_setup).run(members, seed=index)
            leaving = base.state.ring.members[index]
            result = LeaveProtocol(small_setup).run(base.state, leaving, seed=index)
            assert result.all_agree()

    def test_controller_cannot_leave(self, small_setup, established):
        with pytest.raises(MembershipError):
            LeaveProtocol(small_setup).run(established.state, established.state.ring.controller())

    def test_unknown_member_rejected(self, small_setup, established):
        with pytest.raises(MembershipError):
            LeaveProtocol(small_setup).run(established.state, Identity("ghost"))

    def test_leaver_not_charged_for_rekeying(self, small_setup, established):
        established.state.reset_costs()
        leaving = established.state.ring.members[2]
        leaving_recorder = established.state.party(leaving).recorder
        LeaveProtocol(small_setup).run(established.state, leaving, seed=5)
        assert leaving_recorder.rx_bits == 0
        assert leaving_recorder.tx_bits == 0


class TestPartitionProtocol:
    def test_partition_agreement(self, small_setup, established):
        leaving = [established.state.ring.members[i] for i in (1, 3)]
        result = PartitionProtocol(small_setup).run(established.state, leaving, seed=1)
        assert result.all_agree()
        assert result.state.size == established.state.size - 2
        for identity in leaving:
            assert identity not in result.state.ring

    def test_single_member_partition_equals_leave_semantics(self, small_setup, established):
        leaving = established.state.ring.members[2]
        result = PartitionProtocol(small_setup).run(established.state, [leaving], seed=2)
        assert result.all_agree()
        assert result.state.size == established.state.size - 1

    def test_empty_partition_rejected(self, small_setup, established):
        with pytest.raises(ParameterError):
            PartitionProtocol(small_setup).run(established.state, [])

    def test_partition_cannot_remove_controller(self, small_setup, established):
        with pytest.raises(MembershipError):
            PartitionProtocol(small_setup).run(
                established.state, [established.state.ring.controller()]
            )

    def test_partition_cannot_empty_group(self, small_setup, established):
        with pytest.raises(MembershipError):
            PartitionProtocol(small_setup).run(established.state, established.state.ring.members[1:])


class TestMergeProtocol:
    def test_merge_agreement(self, small_setup, established):
        other_members = [Identity(f"other-{i}") for i in range(4)]
        other = ProposedGKAProtocol(small_setup).run(other_members, seed="other")
        old_key_a = established.group_key
        old_key_b = other.group_key
        size_a = established.state.size
        result = MergeProtocol(small_setup).run(established.state, other.state, seed=1)
        assert result.all_agree()
        assert result.state.size == size_a + 4
        assert result.group_key not in (old_key_a, old_key_b)

    def test_merged_ring_order(self, small_setup, established):
        other_members = [Identity(f"ring-{i}") for i in range(3)]
        other = ProposedGKAProtocol(small_setup).run(other_members, seed="ring")
        result = MergeProtocol(small_setup).run(established.state, other.state, seed=2)
        names = [m.name for m in result.state.ring.members]
        assert names[: established.state.size] == [m.name for m in established.state.ring.members]
        assert names[established.state.size :] == [m.name for m in other.state.ring.members]

    def test_non_controllers_do_no_exponentiations(self, small_setup, established):
        other_members = [Identity(f"cheap-{i}") for i in range(3)]
        other = ProposedGKAProtocol(small_setup).run(other_members, seed="cheap")
        established.state.reset_costs()
        other.state.reset_costs()
        result = MergeProtocol(small_setup).run(established.state, other.state, seed=3)
        controllers = {established.state.ring.controller().name, other.state.ring.controller().name}
        for name, recorder in result.state.recorders().items():
            if name in controllers:
                assert recorder.operation_count("modexp") == 4
                assert recorder.operation_count("sign_gen_gq") == 1
                assert recorder.operation_count("sign_ver_gq") == 1
            else:
                assert recorder.operation_count("modexp") == 0

    def test_overlapping_groups_rejected(self, small_setup, established):
        with pytest.raises((MembershipError, ParameterError)):
            MergeProtocol(small_setup).run(established.state, established.state)


class TestChainedDynamics:
    def test_long_event_sequence_keeps_agreement(self, small_setup):
        members = [Identity(f"chain-{i}") for i in range(5)]
        session = GroupSession.establish(small_setup, members, seed="chain")
        keys = {session.group_key}
        session.join(Identity("chain-join-1"))
        keys.add(session.group_key)
        session.leave(members[2])
        keys.add(session.group_key)
        other = GroupSession.establish(small_setup, [Identity(f"chain-b-{i}") for i in range(3)], seed="chain-b")
        session.merge(other)
        keys.add(session.group_key)
        session.partition([members[1], Identity("chain-b-1")])
        keys.add(session.group_key)
        session.join(Identity("chain-join-2"))
        keys.add(session.group_key)
        session.leave(Identity("chain-join-1"))
        keys.add(session.group_key)
        assert session.all_agree()
        assert len(keys) == 7  # every event produced a fresh key


class TestGroupSession:
    def test_establish_and_symmetric_key(self, small_setup):
        members = [Identity(f"sess-{i}") for i in range(4)]
        session = GroupSession.establish(small_setup, members, seed=1)
        assert session.all_agree()
        assert len(session.symmetric_key()) == 16
        assert len(session.symmetric_key(length=32)) == 32
        envelope = session.envelope()
        from repro.mathutils.rand import DeterministicRNG

        sealed = envelope.seal(b"hello group", members[0].to_bytes(), DeterministicRNG(9))
        assert envelope.open(sealed, members[0].to_bytes()) == b"hello group"

    def test_apply_events(self, small_setup):
        members = [Identity(f"ev-{i}") for i in range(5)]
        session = GroupSession.establish(small_setup, members, seed=2)
        session.apply_event(JoinEvent(joining=Identity("ev-new")))
        session.apply_event(LeaveEvent(leaving=members[3]))
        session.apply_event(PartitionEvent(leaving=(members[1],)))
        session.apply_event(MergeEvent(other_group=(Identity("ev-m1"), Identity("ev-m2"))))
        assert session.all_agree()
        assert len(session.history) == 5
        with pytest.raises(ProtocolError):
            session.apply_event("not-an-event")  # type: ignore[arg-type]

    def test_energy_report_and_reset(self, small_setup, wlan_profile, radio_profile):
        members = [Identity(f"energy-{i}") for i in range(4)]
        session = GroupSession.establish(small_setup, members, device=wlan_profile, seed=3)
        report = session.energy_report()
        assert set(report) == {m.name for m in members}
        assert all(b.total_j > 0 for b in report.values())
        assert session.total_energy_j(radio_profile) > session.total_energy_j(wlan_profile)
        session.reset_energy()
        assert session.total_energy_j() == 0.0

    def test_group_key_none_until_agreement(self, small_setup):
        members = [Identity(f"pre-{i}") for i in range(3)]
        session = GroupSession.establish(small_setup, members, seed=4)
        session.state.party(members[0]).group_key = 12345
        assert session.group_key is None
        with pytest.raises(ProtocolError):
            session.symmetric_key()


class TestBDRerunBaseline:
    def test_events_reach_agreement(self, small_setup):
        members = [Identity(f"rerun-{i}") for i in range(4)]
        dynamic = BDRerunDynamic(small_setup)
        established = dynamic.establish(members, seed=1)
        joined = dynamic.join(established.state, Identity("rerun-new"), seed=2)
        assert joined.all_agree() and joined.state.size == 5
        left = dynamic.leave(joined.state, members[2], seed=3)
        assert left.all_agree() and left.state.size == 4
        partitioned = dynamic.partition(left.state, [members[1]], seed=4)
        assert partitioned.all_agree() and partitioned.state.size == 3
        other = dynamic.establish([Identity(f"rerun-b-{i}") for i in range(3)], seed=5)
        merged = dynamic.merge(partitioned.state, other.state, seed=6)
        assert merged.all_agree() and merged.state.size == 6

    def test_rerun_is_much_more_expensive_than_proposed_join(self, small_setup, wlan_profile):
        members = [Identity(f"cmp-{i}") for i in range(6)]
        # Proposed join
        base = ProposedGKAProtocol(small_setup).run(members, seed="cmp")
        base.state.reset_costs()
        joined = JoinProtocol(small_setup).run(base.state, Identity("cmp-new"), seed="cmp-join")
        bystander = [
            m.name for m in base.state.ring.members
            if m.name not in (base.state.ring.controller().name, base.state.ring.last().name)
        ][0]
        proposed_j = wlan_profile.total_j(joined.state.recorders()[bystander])
        # BD re-run join
        dynamic = BDRerunDynamic(small_setup)
        est = dynamic.establish(members, seed="cmp-bd")
        est.state.reset_costs()
        rerun = dynamic.join(est.state, Identity("cmp-new-bd"), seed="cmp-bd-join")
        rerun_j = wlan_profile.total_j(rerun.state.recorders()[bystander])
        assert rerun_j > 20 * proposed_j

    def test_error_cases(self, small_setup):
        members = [Identity(f"err-{i}") for i in range(3)]
        dynamic = BDRerunDynamic(small_setup)
        established = dynamic.establish(members, seed=1)
        with pytest.raises(MembershipError):
            dynamic.join(established.state, members[0])
        with pytest.raises(MembershipError):
            dynamic.leave(established.state, Identity("ghost"))
        with pytest.raises(ParameterError):
            dynamic.partition(established.state, members[1:])
        with pytest.raises(MembershipError):
            dynamic.merge(established.state, established.state)
