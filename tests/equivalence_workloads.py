"""Shared workloads for the engine equivalence suite.

The reactive engine refactor (per-party round state machines driven by a
virtual-time event kernel) must leave the synchronous ``Protocol.run()`` /
``apply_event()`` path *bit-identical*: same group keys, same medium
transcript (order, senders, labels, wire sizes, payload values), same
per-node energy ledgers.  This module defines the canonical workloads and
capture format; ``make_engine_equivalence.py`` froze their output from the
pre-refactor code into ``tests/fixtures/engine_equivalence.json``, and
``test_engine_equivalence.py`` re-runs them against the current code and
compares byte for byte.

The workloads cover, for every registry protocol:

* a lossless 5-member establishment,
* a lossy 5-member establishment (per-broadcast loss with seeded retries),
* a join → leave → merge → partition event chain over a shared medium
  (native dynamic sub-protocols for the proposed scheme, re-execution for
  every baseline).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.core import SystemSetup
from repro.core.registry import available_protocols, create_protocol, protocol_tags
from repro.mathutils.rand import DeterministicRNG
from repro.network.events import JoinEvent, LeaveEvent, MergeEvent, PartitionEvent
from repro.network.medium import BroadcastMedium
from repro.pki import Identity

__all__ = ["run_workloads", "flat_protocols", "FIXTURE_RELPATH"]

#: Where the golden capture lives, relative to the tests directory.
FIXTURE_RELPATH = "fixtures/engine_equivalence.json"


# ---------------------------------------------------------------------------
# Capture helpers
# ---------------------------------------------------------------------------

def _encode_value(value: object) -> str:
    """A stable textual encoding of one message-part value."""
    if isinstance(value, int):
        return f"int:{value:x}"
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if isinstance(value, str):
        return f"str:{value}"
    if isinstance(value, Identity):
        return f"identity:{value.name}"
    to_bytes = getattr(value, "to_bytes", None)
    if callable(to_bytes):  # AuthenticatedCiphertext and friends
        return f"{type(value).__name__}:{to_bytes().hex()}"
    components = getattr(value, "components", None)
    if components is not None:  # Signature
        inner = ",".join(f"{k}={components[k]:x}" for k in sorted(components))
        return f"sig:{getattr(value, 'scheme', '?')}:{inner}"
    tbs = getattr(value, "tbs_bytes", None)
    if callable(tbs):  # Certificate
        signature = _encode_value(value.ca_signature)
        return f"cert:{tbs().hex()}:{signature}"
    return f"repr:{value!r}"


def _message_entry(message) -> Dict[str, object]:
    hasher = hashlib.sha256()
    for part in message.parts:
        hasher.update(f"{part.name}|{part.bits}|{_encode_value(part.value)}|".encode())
    recipients = (
        None
        if message.recipients is None
        else sorted(identity.name for identity in message.recipients)
    )
    return {
        "sender": message.sender.name,
        "round": message.round_label,
        "bits": message.wire_bits,
        "recipients": recipients,
        "digest": hasher.hexdigest(),
    }


def _capture_medium(medium: BroadcastMedium) -> Dict[str, object]:
    return {
        "transcript": [_message_entry(message) for message in medium.transcript],
        "attempts": [receipt.attempts for receipt in medium.receipts],
        "total_bits": medium.total_bits(),
        "total_bits_with_retries": medium.total_bits(include_retries=True),
    }


def _capture_result(result) -> Dict[str, object]:
    state = result.state
    key = result.group_key
    return {
        "protocol": result.protocol,
        "rounds": result.rounds,
        "group_key": None if key is None else f"{key:x}",
        "member_keys": {
            name: (None if k is None else f"{k:x}")
            for name, k in sorted(state.keys_by_member().items())
        },
        "ring": [identity.name for identity in state.members],
        "ledgers": {
            name: dict(sorted(recorder.snapshot().items()))
            for name, recorder in sorted(state.recorders().items())
        },
    }


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def _fresh_setup() -> SystemSetup:
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


def _members(count: int, prefix: str) -> List[Identity]:
    return [Identity(f"{prefix}-{i:02d}") for i in range(count)]


def _lossless_run(protocol_name: str) -> Dict[str, object]:
    setup = _fresh_setup()
    protocol = create_protocol(protocol_name, setup)
    result = protocol.run(_members(5, "eq"), seed=101)
    return {"result": _capture_result(result), "medium": _capture_medium(result.medium)}


def _lossy_run(protocol_name: str) -> Dict[str, object]:
    setup = _fresh_setup()
    protocol = create_protocol(protocol_name, setup)
    medium = BroadcastMedium(
        loss_probability=0.25,
        max_retries=50,
        rng=DeterministicRNG(f"eq/{protocol_name}", label="medium"),
    )
    result = protocol.run(_members(5, "eql"), medium=medium, seed=202)
    return {"result": _capture_result(result), "medium": _capture_medium(result.medium)}


def _event_chain(protocol_name: str) -> Dict[str, object]:
    setup = _fresh_setup()
    protocol = create_protocol(protocol_name, setup)
    medium = BroadcastMedium()
    result = protocol.run(_members(6, "eqd"), medium=medium, seed=303)
    steps = [{"kind": "establish", **_capture_result(result)}]
    state = result.state

    events = [
        ("join", lambda s: JoinEvent(joining=Identity("eqd-new"))),
        ("leave", lambda s: LeaveEvent(leaving=s.members[2])),
        (
            "merge",
            lambda s: MergeEvent(other_group=tuple(_members(3, "eqm"))),
        ),
        (
            "partition",
            lambda s: PartitionEvent(leaving=(s.members[1], s.members[3])),
        ),
    ]
    for position, (kind, build) in enumerate(events, start=1):
        event = build(state)
        result = protocol.apply_event(state, event, medium=medium, seed=300 + position)
        state = result.state
        steps.append({"kind": kind, **_capture_result(result)})
    return {"steps": steps, "medium": _capture_medium(medium)}


def flat_protocols() -> List[str]:
    """The registry's flat protocols — the ones the golden capture pins.

    The hierarchical ``cluster`` protocols are excluded by tag rather than by
    name: they were added after the fixture was frozen and their state is
    sparse per-cluster, so they carry their own correctness suite
    (``test_cluster.py``) instead of a seed capture.
    """
    return [
        name
        for name in available_protocols()
        if "cluster" not in protocol_tags(name)
    ]


def run_workloads() -> Dict[str, object]:
    """Execute every equivalence workload and return the capture dictionary."""
    capture: Dict[str, object] = {}
    for protocol_name in flat_protocols():
        capture[protocol_name] = {
            "lossless": _lossless_run(protocol_name),
            "lossy": _lossy_run(protocol_name),
            "events": _event_chain(protocol_name),
        }
    return capture


if __name__ == "__main__":  # pragma: no cover - fixture (re)generation entry point
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    path = os.path.join(here, FIXTURE_RELPATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run_workloads(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
