"""Mobility benchmark: emergent random-waypoint churn at n=50.

The acceptance workload for the mobility subsystem: 50 nodes walk a
900x900 m field; the connectivity monitor derives the partition/merge stream
from the reachability graph (nothing is hand-scripted), broadcasts are
flooded hop by hop with every relay charged transmit/receive energy, and the
proposed protocol is compared against plain-BD re-execution and SSN over the
identical emergent event stream.

Set ``MOBILITY_BENCH_N=100`` in the environment to run the large variant
(same field scaled up; used manually — CI runs the fast n=50 configuration).
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.sim import Scenario, ScenarioRunner, comparison_table

GROUP_SIZE = int(os.environ.get("MOBILITY_BENCH_N", "50"))
PROTOCOLS = ("proposed", "bd", "bd-dsa", "ssn")

#: Seeds verified to yield a fully-connected start and at least one emergent
#: partition + merge for their group size (the area scales with sqrt(n) to
#: keep node density constant, so trajectories differ per size).
_SEEDS = {50: "b18", 100: "m100"}


@pytest.fixture(scope="module")
def mobility_scenario():
    scale = math.sqrt(GROUP_SIZE / 50.0)
    return Scenario(
        name=f"rwp-{GROUP_SIZE}",
        initial_size=GROUP_SIZE,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(900.0 * scale, 900.0 * scale),
            tx_range=220.0,
            duration=120.0,
            tick=2.0,
            edge_loss=0.15,
            settle_ticks=2,
        ),
        seed=_SEEDS.get(GROUP_SIZE, "b18"),
    )


@pytest.fixture(scope="module")
def mobility_reports(small_setup, mobility_scenario, wlan_profile):
    runner = ScenarioRunner(small_setup, device=wlan_profile)
    reports = {}
    walls = {}
    for name in PROTOCOLS:
        started = time.perf_counter()
        reports[name] = runner.run(name, mobility_scenario)
        walls[name] = time.perf_counter() - started
    return reports, walls


def test_print_mobility_comparison(mobility_reports, mobility_scenario):
    """The emergent-churn comparison, with relay-energy and hop columns."""
    reports, walls = mobility_reports
    kinds = [event.kind for event in mobility_scenario.build_events()]
    print()
    print(f"emergent events ({len(kinds)}): {', '.join(kinds)}")
    print(comparison_table([reports[name] for name in PROTOCOLS]))
    for name in PROTOCOLS:
        print(f"host wall-time {name}: {walls[name]:.2f}s")


def test_churn_is_emergent_not_scripted(mobility_scenario):
    assert mobility_scenario.schedule is None
    kinds = [event.kind for event in mobility_scenario.build_events()]
    assert "partition" in kinds
    assert "merge" in kinds


def test_all_protocols_agree_after_every_event(mobility_reports):
    reports, _ = mobility_reports
    for name in PROTOCOLS:
        assert reports[name].agreed_throughout


def test_relay_hops_cost_measurable_energy(mobility_reports):
    reports, _ = mobility_reports
    for name in PROTOCOLS:
        report = reports[name]
        # Strictly more on-air copies than logical messages, a non-zero relay
        # share, and floods deeper than the single-hop degenerate case.
        assert report.total_transmissions > report.total_messages
        assert report.total_relay_bits > 0
        assert report.total_relay_energy_j > 0
        assert report.mean_hops > 1.0


def test_proposed_beats_authenticated_rerun_baselines_under_mobility(mobility_reports):
    # The paper's claim: against *authenticated* GKAs (certificate-based BD,
    # SSN) the proposed protocol is cheaper end to end.  Unauthenticated BD
    # is kept in the comparison only as the floor.
    reports, _ = mobility_reports
    proposed = reports["proposed"].total_energy_j
    for baseline in ("bd-dsa", "ssn"):
        assert proposed < reports[baseline].total_energy_j
