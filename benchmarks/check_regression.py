#!/usr/bin/env python
"""Benchmark regression gate over the ``BENCH_*.json`` artifacts.

Compares the fresh artifacts a benchmark run just wrote (``benchmarks/
artifacts/`` or ``$REPRO_BENCH_DIR``) against the committed trajectory points
in ``benchmarks/trajectory/`` and fails when a module's total wall time
regressed by more than the threshold (default 25%).  Modules without a
committed point are reported as *new* and never fail the gate — commit their
artifact with ``--update`` to start tracking them.

Usage::

    python benchmarks/check_regression.py              # gate (exit 1 on regression)
    python benchmarks/check_regression.py --update     # adopt fresh artifacts
    python benchmarks/check_regression.py --threshold 0.4
    python benchmarks/check_regression.py --metric-gate energy=0.02 \\
        --metric-gate overhead=0.10

Two things gate:

* **wall time** — a module's total wall seconds vs its committed point
  (``--threshold``, one-sided: only slowdowns fail);
* **metric fields** — recorded domain metrics whose (flattened, dotted) name
  contains one of the gated substrings (``DEFAULT_METRIC_GATES`` or
  ``--metric-gate SUBSTR=FRAC``), two-sided: these are deterministic or
  near-deterministic quantities (energy totals, cache hit rates, sim-latency
  percentiles, traced-overhead ratios), so drift in *either* direction is a
  behaviour change worth failing on.

Everything else is surfaced informationally.  Runs on stdlib only.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Optional

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

from _artifacts import artifact_dir, trajectory_dir  # noqa: E402

#: Metric-name substrings gated by default, with their per-field relative
#: tolerance.  Energy totals are deterministic (any drift is a semantics
#: change); rates/percentiles/ratios get looser, noise-aware bounds.
DEFAULT_METRIC_GATES: Dict[str, float] = {
    "energy": 0.01,
    "hit_rate": 0.25,
    "sim_latency": 0.10,
    "p50": 0.25,
    "p95": 0.25,
    "overhead": 0.25,
}


def parse_metric_gate(text: str) -> Dict[str, float]:
    """One ``SUBSTR=FRAC`` override → ``{substr: fraction}``."""
    substr, separator, fraction = text.partition("=")
    if not separator or not substr:
        raise ValueError(f"--metric-gate must be SUBSTR=FRAC, got {text!r}")
    return {substr: float(fraction)}


def flatten_metrics(value: object, prefix: str = "") -> Dict[str, float]:
    """Flatten an artifact's ``metrics`` tree into dotted numeric fields."""
    fields: Dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            fields.update(flatten_metrics(child, name))
    elif isinstance(value, bool):
        pass  # booleans are not gateable quantities
    elif isinstance(value, (int, float)):
        fields[prefix] = float(value)
    return fields


def _gate_for(name: str, gates: Dict[str, float]) -> Optional[float]:
    """The tightest gate whose substring matches ``name`` (None = ungated)."""
    matching = [frac for substr, frac in gates.items() if substr in name]
    return min(matching) if matching else None


def check_metrics(
    module: str,
    fresh: Dict,
    baseline: Dict,
    gates: Dict[str, float],
) -> List[str]:
    """Diff the two artifacts' gated metric fields; returns failure labels."""
    fresh_fields = flatten_metrics(fresh.get("metrics", {}))
    base_fields = flatten_metrics(baseline.get("metrics", {}))
    failures: List[str] = []
    for name in sorted(fresh_fields):
        tolerance = _gate_for(name, gates)
        if tolerance is None:
            continue
        fresh_value = fresh_fields[name]
        base_value = base_fields.get(name)
        if base_value is None:
            print(f"  {module}.{name:<40} baseline=- fresh={fresh_value:.6g} "
                  "(new, not gated)")
            continue
        if base_value == 0.0:
            delta = 0.0 if fresh_value == 0.0 else float("inf")
        else:
            delta = (fresh_value - base_value) / abs(base_value)
        if abs(delta) > tolerance:
            failures.append(f"{module}.{name}")
            status = f"METRIC REGRESSION (|Δ| > {tolerance:.0%})"
        else:
            status = "ok"
        print(f"  {module}.{name:<40} baseline={base_value:.6g} "
              f"fresh={fresh_value:.6g} delta={delta:+.1%}  {status}")
    for name in sorted(set(base_fields) - set(fresh_fields)):
        if _gate_for(name, gates) is not None:
            failures.append(f"{module}.{name}")
            print(f"  {module}.{name:<40} baseline={base_fields[name]:.6g} "
                  "fresh=MISSING  METRIC REGRESSION (field disappeared)")
    return failures


def _load(path: Path) -> Optional[Dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: unreadable artifact {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(data, dict) or "total_wall_seconds" not in data:
        print(f"warning: {path} is not a BENCH artifact", file=sys.stderr)
        return None
    return data


def check(
    fresh_dir: Path,
    baseline_dir: Path,
    threshold: float,
    metric_gates: Optional[Dict[str, float]] = None,
) -> int:
    """Print the comparison table; return the number of regressions."""
    if metric_gates is None:
        metric_gates = dict(DEFAULT_METRIC_GATES)
    fresh_paths = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"error: no BENCH_*.json artifacts in {fresh_dir} — run the "
              "benchmarks first (pytest benchmarks/)", file=sys.stderr)
        return 1
    regressions: List[str] = []
    metric_failures: List[str] = []
    print(f"{'module':<32} {'baseline s':>11} {'fresh s':>9} {'delta':>8}  status")
    for path in fresh_paths:
        fresh = _load(path)
        if fresh is None:
            continue
        name = str(fresh.get("name", path.stem))
        fresh_s = float(fresh["total_wall_seconds"])
        base_path = baseline_dir / path.name
        if not base_path.exists():
            print(f"{name:<32} {'-':>11} {fresh_s:>9.3f} {'-':>8}  new (not gated)")
            continue
        baseline = _load(base_path)
        if baseline is None:
            continue
        base_s = float(baseline["total_wall_seconds"])
        delta = (fresh_s - base_s) / base_s if base_s else 0.0
        if delta > threshold:
            status = f"REGRESSION (> {threshold:.0%})"
            regressions.append(name)
        else:
            status = "ok"
        print(f"{name:<32} {base_s:>11.3f} {fresh_s:>9.3f} {delta:>+8.1%}  {status}")
        metric_failures.extend(check_metrics(name, fresh, baseline, metric_gates))
    if regressions:
        print(f"\n{len(regressions)} wall-time regression(s): {', '.join(regressions)}")
    if metric_failures:
        print(f"\n{len(metric_failures)} metric regression(s): "
              f"{', '.join(metric_failures)}")
    return len(regressions) + len(metric_failures)


def update(fresh_dir: Path, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for path in sorted(fresh_dir.glob("BENCH_*.json")):
        if _load(path) is None:
            continue
        shutil.copyfile(path, baseline_dir / path.name)
        copied += 1
    print(f"adopted {copied} artifact(s) into {baseline_dir}")
    return 0 if copied else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", default=None, help=f"fresh artifact directory (default: {artifact_dir()})"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"committed trajectory directory (default: {trajectory_dir()})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional wall-time increase that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifacts into the trajectory instead of gating",
    )
    parser.add_argument(
        "--metric-gate",
        action="append",
        default=None,
        metavar="SUBSTR=FRAC",
        help="gate metric fields whose dotted name contains SUBSTR at a "
        "relative tolerance of FRAC (repeatable; overrides/extends the "
        "defaults: "
        + ", ".join(f"{k}={v:g}" for k, v in DEFAULT_METRIC_GATES.items())
        + ")",
    )
    args = parser.parse_args(argv)
    fresh = Path(args.fresh) if args.fresh else artifact_dir()
    baseline = Path(args.baseline) if args.baseline else trajectory_dir()
    if args.update:
        return update(fresh, baseline)
    gates = dict(DEFAULT_METRIC_GATES)
    for override in args.metric_gate or []:
        try:
            gates.update(parse_metric_gate(override))
        except ValueError as exc:
            parser.error(str(exc))
    return 1 if check(fresh, baseline, args.threshold, gates) else 0


if __name__ == "__main__":
    sys.exit(main())
