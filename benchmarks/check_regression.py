#!/usr/bin/env python
"""Benchmark regression gate over the ``BENCH_*.json`` artifacts.

Compares the fresh artifacts a benchmark run just wrote (``benchmarks/
artifacts/`` or ``$REPRO_BENCH_DIR``) against the committed trajectory points
in ``benchmarks/trajectory/`` and fails when a module's total wall time
regressed by more than the threshold (default 25%).  Modules without a
committed point are reported as *new* and never fail the gate — commit their
artifact with ``--update`` to start tracking them.

Usage::

    python benchmarks/check_regression.py              # gate (exit 1 on regression)
    python benchmarks/check_regression.py --update     # adopt fresh artifacts
    python benchmarks/check_regression.py --threshold 0.4

Only wall time gates: domain metrics (energy, percentiles, speedups) are
deterministic or asserted by the benchmarks themselves, so the gate just
surfaces their drift informationally.  Runs on stdlib only.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Optional

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

from _artifacts import artifact_dir, trajectory_dir  # noqa: E402


def _load(path: Path) -> Optional[Dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: unreadable artifact {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(data, dict) or "total_wall_seconds" not in data:
        print(f"warning: {path} is not a BENCH artifact", file=sys.stderr)
        return None
    return data


def check(fresh_dir: Path, baseline_dir: Path, threshold: float) -> int:
    """Print the comparison table; return the number of regressions."""
    fresh_paths = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"error: no BENCH_*.json artifacts in {fresh_dir} — run the "
              "benchmarks first (pytest benchmarks/)", file=sys.stderr)
        return 1
    regressions: List[str] = []
    print(f"{'module':<32} {'baseline s':>11} {'fresh s':>9} {'delta':>8}  status")
    for path in fresh_paths:
        fresh = _load(path)
        if fresh is None:
            continue
        name = str(fresh.get("name", path.stem))
        fresh_s = float(fresh["total_wall_seconds"])
        base_path = baseline_dir / path.name
        if not base_path.exists():
            print(f"{name:<32} {'-':>11} {fresh_s:>9.3f} {'-':>8}  new (not gated)")
            continue
        baseline = _load(base_path)
        if baseline is None:
            continue
        base_s = float(baseline["total_wall_seconds"])
        delta = (fresh_s - base_s) / base_s if base_s else 0.0
        if delta > threshold:
            status = f"REGRESSION (> {threshold:.0%})"
            regressions.append(name)
        else:
            status = "ok"
        print(f"{name:<32} {base_s:>11.3f} {fresh_s:>9.3f} {delta:>+8.1%}  {status}")
    if regressions:
        print(f"\n{len(regressions)} wall-time regression(s): {', '.join(regressions)}")
    return len(regressions)


def update(fresh_dir: Path, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for path in sorted(fresh_dir.glob("BENCH_*.json")):
        if _load(path) is None:
            continue
        shutil.copyfile(path, baseline_dir / path.name)
        copied += 1
    print(f"adopted {copied} artifact(s) into {baseline_dir}")
    return 0 if copied else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", default=None, help=f"fresh artifact directory (default: {artifact_dir()})"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"committed trajectory directory (default: {trajectory_dir()})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional wall-time increase that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifacts into the trajectory instead of gating",
    )
    args = parser.parse_args(argv)
    fresh = Path(args.fresh) if args.fresh else artifact_dir()
    baseline = Path(args.baseline) if args.baseline else trajectory_dir()
    if args.update:
        return update(fresh, baseline)
    return 1 if check(fresh, baseline, args.threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
