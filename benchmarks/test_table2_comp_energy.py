"""Reproduce Table 2: computational energy and timing costs per primitive.

The table is derived from the paper's extrapolation rule (equation 4) and the
MIRACL reference timings; this benchmark prints it next to the paper's printed
values and also measures the wall-clock time of our own pure-Python primitives
with pytest-benchmark (reported for interest — the energy model uses the
paper's device constants, not our laptop timings).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.energy import OperationCostTable, PAPER_TABLE2_ENERGY_MJ
from repro.groups.pairing import SimulatedPairingGroup
from repro.mathutils.rand import DeterministicRNG
from repro.pki import Identity, PrivateKeyGenerator
from repro.signatures import ECDSASignatureScheme, GQSignatureScheme


def test_print_table2():
    """Regenerate Table 2 and check every derived value against the paper."""
    table = OperationCostTable()
    rows = []
    for operation in sorted(PAPER_TABLE2_ENERGY_MJ):
        ours_mj = table.energy_mj(operation)
        paper_mj = PAPER_TABLE2_ENERGY_MJ[operation]
        rows.append(
            [
                operation,
                ours_mj,
                paper_mj,
                table.time_ms(operation),
                table.reference_timings_ms[operation],
            ]
        )
    print()
    print(
        format_table(
            ["operation", "ours (mJ)", "paper (mJ)", "StrongARM (ms)", "P-III 450 (ms)"],
            rows,
            title="Table 2 — computational energy cost",
        )
    )
    for operation, paper_mj in PAPER_TABLE2_ENERGY_MJ.items():
        assert abs(table.energy_mj(operation) - paper_mj) / paper_mj < 0.03


def test_relative_cost_ordering():
    """The orderings the paper's argument relies on."""
    table = OperationCostTable()
    assert table.energy_mj("sign_ver_sok") > 7 * table.energy_mj("sign_ver_gq")
    assert table.energy_mj("sign_ver_gq") < 2 * table.energy_mj("sign_ver_dsa")
    assert table.energy_mj("symmetric") < table.energy_mj("modexp") / 50


def test_benchmark_modexp_1024(benchmark, paper_setup):
    """Wall-clock cost of the paper-sized modular exponentiation in CPython."""
    group = paper_setup.group
    rng = DeterministicRNG("bench-modexp")
    exponent = rng.zq_star(group.q)
    benchmark(lambda: group.exp_g(exponent))


def test_benchmark_gq_sign_and_verify(benchmark, paper_setup):
    """Wall-clock cost of one GQ sign+verify on the 1024-bit modulus."""
    pkg = paper_setup.pkg
    identity = Identity("bench-gq")
    key = pkg.register_and_extract(identity)
    scheme = GQSignatureScheme(paper_setup.gq_params)
    rng = DeterministicRNG("bench-gq")

    def sign_and_verify():
        signature = scheme.sign(key, b"benchmark message", rng)
        assert scheme.verify(identity.to_bytes(), b"benchmark message", signature)

    benchmark(sign_and_verify)


def test_benchmark_ecdsa_sign_and_verify(benchmark):
    """Wall-clock cost of one secp160r1 ECDSA sign+verify (pure Python)."""
    scheme = ECDSASignatureScheme()
    rng = DeterministicRNG("bench-ecdsa")
    keypair = scheme.generate_keypair(rng)

    def sign_and_verify():
        signature = scheme.sign(keypair, b"benchmark message", rng)
        assert scheme.verify(keypair, b"benchmark message", signature)

    benchmark(sign_and_verify)


def test_benchmark_simulated_pairing(benchmark, paper_setup):
    """Wall-clock cost of one simulated pairing evaluation."""
    pairing = SimulatedPairingGroup(paper_setup.group)
    rng = DeterministicRNG("bench-pairing")
    a = pairing.random_element(rng)
    b = pairing.random_element(rng)
    benchmark(lambda: pairing.pairing(a, b))
