"""Engine latency benchmark: virtual completion time at n=50 under mobility.

The acceptance workload for the reactive engine: the 50-node random-waypoint
field from the mobility benchmark, but driven through the virtual-time kernel
with a transceiver-derived latency model.  Messages serialize on the shared
channel at the WLAN bitrate, relay hops re-serialize, per-link losses surface
as round timeouts with retransmission waves, and each membership event's
completion latency (``sim_latency_s``) lands in the scenario report next to
its energy — the latency dimension the paper's MANET setting implies but its
tables never show.

The test prints per-event sim-latency percentiles alongside energy for the
proposed protocol and the BD re-execution baseline, and asserts the run is
deterministic (two runs under the same master seed produce identical
virtual-time traces and energy ledgers).
"""

from __future__ import annotations

import math
import time

import pytest

from repro.engine import EngineConfig, TransceiverLatency
from repro.energy import WLAN_SPECTRUM24
from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.sim import Scenario, ScenarioRunner, comparison_table

GROUP_SIZE = 50
PROTOCOLS = ("proposed", "bd")


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


@pytest.fixture(scope="module")
def engine_scenario():
    return Scenario(
        name=f"rwp-{GROUP_SIZE}-engine",
        initial_size=GROUP_SIZE,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(900.0, 900.0),
            tx_range=220.0,
            duration=120.0,
            tick=2.0,
            edge_loss=0.15,
            settle_ticks=2,
        ),
        # Verified to start fully connected and to produce an emergent
        # partition + merge + leave + join under this scenario name (the
        # master RNG is domain-separated by name, so the mobility benchmark's
        # seed does not transfer).
        seed="e3",
    )


@pytest.fixture(scope="module")
def engine_config():
    return EngineConfig(
        latency=TransceiverLatency(WLAN_SPECTRUM24),
        round_timeout_s=0.5,
        max_timeout_waves=50,
    )


@pytest.fixture(scope="module")
def engine_reports(small_setup, wlan_profile, engine_scenario, engine_config):
    runner = ScenarioRunner(small_setup, device=wlan_profile, engine=engine_config)
    reports = {}
    walls = {}
    for name in PROTOCOLS:
        started = time.perf_counter()
        reports[name] = runner.run(name, engine_scenario)
        walls[name] = time.perf_counter() - started
    return reports, walls


class TestEngineLatencyBenchmark:
    def test_sim_latency_percentiles_alongside_energy(self, engine_reports, bench_artifact):
        reports, walls = engine_reports
        print(f"\n=== n={GROUP_SIZE} mobility scenario on the virtual-time kernel ===")
        print(comparison_table(list(reports.values())))
        print(
            f"\n{'protocol':<18} {'p50 s':>8} {'p90 s':>8} {'max s':>8} "
            f"{'total sim s':>12} {'timeouts':>9} {'energy J':>10} {'host s':>7}"
        )
        for name, report in reports.items():
            latencies = [record.sim_latency_s for record in report.records]
            print(
                f"{report.protocol:<18} {_percentile(latencies, 0.5):>8.4f} "
                f"{_percentile(latencies, 0.9):>8.4f} {max(latencies):>8.4f} "
                f"{report.total_sim_latency_s:>12.4f} {report.total_timeouts:>9} "
                f"{report.total_energy_j:>10.4f} {walls[name]:>7.2f}"
            )
            bench_artifact.record(
                f"sim_latency_{name}",
                {
                    "p50_s": round(_percentile(latencies, 0.5), 6),
                    "p90_s": round(_percentile(latencies, 0.9), 6),
                    "max_s": round(max(latencies), 6),
                    "total_s": round(report.total_sim_latency_s, 6),
                },
            )
            bench_artifact.record(f"energy_j_{name}", round(report.total_energy_j, 6))
        for report in reports.values():
            assert report.agreed_throughout
            assert report.final_size >= 3
            assert report.total_sim_latency_s > 0.0
            assert all(record.sim_latency_s > 0.0 for record in report.records)

    def test_proposed_beats_rerun_on_event_latency(self, engine_reports):
        reports, _ = engine_reports
        proposed = reports["proposed"]
        rerun = reports["bd"]
        # Same emergent event stream for both protocols.
        assert [r.kind for r in proposed.records] == [r.kind for r in rerun.records]
        # Per churn event, the dedicated dynamic protocols finish sooner in
        # virtual time than re-running the whole GKA over the group.
        proposed_events = sum(r.sim_latency_s for r in proposed.events)
        rerun_events = sum(r.sim_latency_s for r in rerun.events)
        assert proposed_events < rerun_events

    def test_determinism_under_master_seed(self, small_setup, wlan_profile, engine_scenario, engine_config):
        runner = ScenarioRunner(small_setup, device=wlan_profile, engine=engine_config)
        first = runner.run("proposed", engine_scenario.with_seed("e3"))
        second = runner.run("proposed", engine_scenario.with_seed("e3"))
        assert [r.sim_latency_s for r in first.records] == [
            r.sim_latency_s for r in second.records
        ]
        assert [r.timeouts for r in first.records] == [r.timeouts for r in second.records]
        assert first.per_member_energy_j() == second.per_member_energy_j()
