"""Reproduce Table 5: per-role energy of the dynamic protocols (n=100, m=20,
ld=20, StrongARM + Spectrum24 WLAN card), plus a simulation cross-check at a
smaller group size."""

from __future__ import annotations

import pytest

from repro.analysis import DynamicComplexityParams, PAPER_TABLE5_J, dynamic_energy_table, format_table
from repro.baselines import BDRerunDynamic
from repro.core import JoinProtocol, LeaveProtocol, ProposedGKAProtocol
from repro.pki import Identity


def test_print_table5():
    """Regenerate Table 5 and compare every row against the paper's values."""
    ours = dynamic_energy_table(DynamicComplexityParams(n=100, m=20, ld=20))
    rows = []
    for key in PAPER_TABLE5_J:
        protocol, event, role = key
        rows.append([protocol, event, role, ours[key], PAPER_TABLE5_J[key], ours[key] / PAPER_TABLE5_J[key]])
    print()
    print(
        format_table(
            ["protocol", "event", "role", "ours (J)", "paper (J)", "ratio"],
            rows,
            title="Table 5 — dynamic protocol energy (n=100, m=20, ld=20, WLAN)",
        )
    )
    for key, paper_j in PAPER_TABLE5_J.items():
        tolerance = 0.35 if paper_j < 0.01 else 0.08
        assert abs(ours[key] - paper_j) / paper_j < tolerance, (key, ours[key], paper_j)


def test_shape_claims():
    """The claims the paper draws from Table 5."""
    ours = dynamic_energy_table()
    # Non-leader members of the proposed Join/Merge pay ~three orders of
    # magnitude less than re-running BD.
    assert ours[("bd-rerun", "join", "incumbent")] / ours[("proposed", "join", "others")] > 300
    assert ours[("bd-rerun", "merge", "group_a")] / ours[("proposed", "merge", "others")] > 300
    # Even the busiest proposed-protocol roles beat the BD baseline by >5x.
    for event, role, baseline_role in (
        ("join", "newcomer", "newcomer"),
        ("leave", "odd", "remaining"),
        ("merge", "controller_a", "group_a"),
        ("partition", "odd", "remaining"),
    ):
        assert ours[("bd-rerun", event, baseline_role)] > 5 * ours[("proposed", event, role)]


def test_simulation_cross_check(small_setup, wlan_profile):
    """Execute Join and Leave on a 10-member group and confirm the ordering.

    The absolute numbers differ from Table 5 (group of 10, test-sized moduli,
    real envelope overheads), but the per-role ordering and the gap versus the
    BD re-run baseline must match the closed-form model.
    """
    members = [Identity(f"t5-{i}") for i in range(10)]
    base = ProposedGKAProtocol(small_setup).run(members, seed="t5")
    base.state.reset_costs()
    joined = JoinProtocol(small_setup).run(base.state, Identity("t5-new"), seed=1)
    recorders = joined.state.recorders()
    controller = base.state.ring.controller().name
    last = base.state.ring.last().name
    bystanders = [
        name for name in recorders if name not in (controller, last, "t5-new")
    ]
    energies = {name: wlan_profile.total_j(rec) for name, rec in recorders.items()}
    print("\nsimulated proposed-Join energies (J):")
    for name in (controller, last, "t5-new", bystanders[0]):
        print(f"  {name:10s} {energies[name]:.6f}")
    assert energies[bystanders[0]] < energies[controller] < energies["t5-new"] * 2
    assert all(energies[name] < 0.01 for name in bystanders)

    # Baseline: a BD re-run join on the same group size costs every incumbent
    # orders of magnitude more than a proposed-protocol bystander.
    dynamic = BDRerunDynamic(small_setup)
    est = dynamic.establish(members, seed="t5-bd")
    est.state.reset_costs()
    rerun = dynamic.join(est.state, Identity("t5-new-bd"), seed=2)
    rerun_energy = wlan_profile.total_j(rerun.state.recorders()[bystanders[0]])
    assert rerun_energy > 30 * energies[bystanders[0]]


def test_benchmark_leave_rekeying(benchmark, small_setup):
    """Benchmark the Leave protocol on a 10-member group."""
    def run_leave():
        members = [Identity(f"t5b-{i}") for i in range(10)]
        base = ProposedGKAProtocol(small_setup).run(members, seed="t5b")
        return LeaveProtocol(small_setup).run(base.state, base.state.ring.members[4], seed=3)

    result = benchmark(run_leave)
    assert result.all_agree()
