"""Shared fixtures for the benchmark harness.

Each ``test_table*.py`` / ``test_figure1*.py`` module regenerates one table or
figure of the paper: it prints the reproduced numbers (via ``-s`` or captured
in the benchmark log) and asserts the *shape* claims the paper makes, so a
plain ``pytest benchmarks/ --benchmark-only`` both reproduces and sanity-checks
the evaluation section.  pytest-benchmark timings of the underlying primitives
are attached where measuring our pure-Python implementation is meaningful.
"""

from __future__ import annotations

import pytest

from repro.core import SystemSetup
from repro.energy import DeviceProfile, RADIO_100KBPS, WLAN_SPECTRUM24


@pytest.fixture(scope="session")
def small_setup() -> SystemSetup:
    """Fast parameters for simulation cross-checks inside the benchmarks."""
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


@pytest.fixture(scope="session")
def paper_setup() -> SystemSetup:
    """The paper's 1024-bit parameters for primitive timing benchmarks."""
    return SystemSetup.from_param_sets("ipps2006-1024", "gq-1024")


@pytest.fixture(scope="session")
def wlan_profile() -> DeviceProfile:
    return DeviceProfile(transceiver=WLAN_SPECTRUM24)


@pytest.fixture(scope="session")
def radio_profile() -> DeviceProfile:
    return DeviceProfile(transceiver=RADIO_100KBPS)
