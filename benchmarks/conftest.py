"""Shared fixtures for the benchmark harness.

Each ``test_table*.py`` / ``test_figure1*.py`` module regenerates one table or
figure of the paper: it prints the reproduced numbers (via ``-s`` or captured
in the benchmark log) and asserts the *shape* claims the paper makes, so a
plain ``pytest benchmarks/ --benchmark-only`` both reproduces and sanity-checks
the evaluation section.  pytest-benchmark timings of the underlying primitives
are attached where measuring our pure-Python implementation is meaningful.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from _artifacts import BenchArtifact  # noqa: E402 (needs the path tweak above)

from repro.core import SystemSetup
from repro.energy import DeviceProfile, RADIO_100KBPS, WLAN_SPECTRUM24


@pytest.fixture(scope="module")
def bench_artifact(request) -> BenchArtifact:
    """This module's ``BENCH_<name>.json`` collector (written at teardown).

    The autouse timer below feeds it per-test wall times, so every benchmark
    module emits an artifact without further ceremony; modules record richer
    domain metrics (energy totals, percentiles, speedups) explicitly.
    """
    name = Path(request.module.__file__).stem
    if name.startswith("test_"):
        name = name[len("test_"):]
    artifact = BenchArtifact(name)
    yield artifact
    artifact.write()


@pytest.fixture(autouse=True)
def _bench_wall_time(request, bench_artifact):
    started = time.perf_counter()
    yield
    bench_artifact.record_test(request.node.name, time.perf_counter() - started)


@pytest.fixture(scope="session")
def small_setup() -> SystemSetup:
    """Fast parameters for simulation cross-checks inside the benchmarks."""
    return SystemSetup.from_param_sets("test-256", "gq-test-256")


@pytest.fixture(scope="session")
def paper_setup() -> SystemSetup:
    """The paper's 1024-bit parameters for primitive timing benchmarks."""
    return SystemSetup.from_param_sets("ipps2006-1024", "gq-1024")


@pytest.fixture(scope="session")
def wlan_profile() -> DeviceProfile:
    return DeviceProfile(transceiver=WLAN_SPECTRUM24)


@pytest.fixture(scope="session")
def radio_profile() -> DeviceProfile:
    return DeviceProfile(transceiver=RADIO_100KBPS)
