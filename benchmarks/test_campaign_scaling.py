"""Campaign scaling: a sharded sweep must actually beat the serial loop.

The acceptance grid is 4 protocols × 3 loss levels × 2 mobility models at
n=20 (24 cells, each a full mobility scenario with emergent churn on the
virtual-time engine).  The benchmark runs it twice — ``workers=1`` and
``workers=4`` — and asserts:

* the sharded run is at least 2x faster wall-clock than the serial run, and
* both runs are **bit-identical** (the determinism contract the speedup is
  not allowed to break).

The speedup assertion needs real cores; on boxes with fewer than four CPUs
(the 2x bound is unreachable by construction) the test skips.  Set
``CAMPAIGN_SCALING_STRICT=1`` to fail instead of skipping.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignSpec, run_campaign

MOBILITY_COMMON = {
    "area": [420.0, 420.0],
    "tx_range": 150.0,
    "duration": 240.0,
    "tick": 1.0,
    "edge_loss": 0.2,
    "settle_ticks": 2,
}

ACCEPTANCE_GRID = CampaignSpec(
    name="campaign-scaling",
    protocols=("proposed-gka", "bd-unauthenticated", "bd-dsa", "ssn"),
    group_sizes=(20,),
    losses=(0.0, 0.05, 0.1),
    mobilities={
        "rwp": {"model": "random-waypoint", "min_speed": 2.0, "max_speed": 10.0, **MOBILITY_COMMON},
        "rpgm": {"model": "rpgm", **MOBILITY_COMMON},
    },
    engines=("fixed:0.002",),
    seed="scaling-bench",
)

WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def _enough_cpus() -> bool:
    return (os.cpu_count() or 1) >= WORKERS


class TestCampaignScaling:
    def test_grid_shape_matches_the_acceptance_criterion(self):
        cells = ACCEPTANCE_GRID.cells()
        assert len(cells) == 4 * 3 * 2
        assert all(cell.axes["group_size"] == 20 for cell in cells)

    @pytest.mark.skipif(
        not _enough_cpus() and not os.environ.get("CAMPAIGN_SCALING_STRICT"),
        reason=f"speedup bound needs >= {WORKERS} CPUs (found {os.cpu_count()})",
    )
    def test_four_workers_at_least_twice_as_fast_and_bit_identical(self, bench_artifact):
        # Warm the in-process parameter/memoisation caches once so the serial
        # timing is not paying one-time setup the forked workers inherit.
        warmup = CampaignSpec(
            name="campaign-scaling-warmup",
            protocols=ACCEPTANCE_GRID.protocols,
            group_sizes=(4,),
            seed="warmup",
        )
        run_campaign(warmup, workers=1)

        started = time.perf_counter()
        serial = run_campaign(ACCEPTANCE_GRID, workers=1)
        serial_s = time.perf_counter() - started

        started = time.perf_counter()
        sharded = run_campaign(ACCEPTANCE_GRID, workers=WORKERS)
        sharded_s = time.perf_counter() - started

        assert serial.failures() == [] and sharded.failures() == []
        assert sharded.deterministic_rows() == serial.deterministic_rows()

        speedup = serial_s / sharded_s if sharded_s else float("inf")
        print(
            f"\ncampaign scaling: {len(serial.rows)} cells, "
            f"serial {serial_s:.2f}s vs {WORKERS} workers {sharded_s:.2f}s "
            f"-> {speedup:.2f}x"
        )
        bench_artifact.record("cells", len(serial.rows))
        bench_artifact.record("serial_seconds", round(serial_s, 3))
        bench_artifact.record(f"sharded_{WORKERS}w_seconds", round(sharded_s, 3))
        bench_artifact.record("worker_speedup", round(speedup, 3))
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x with {WORKERS} workers, got "
            f"{speedup:.2f}x ({serial_s:.2f}s -> {sharded_s:.2f}s)"
        )

    def test_sharded_run_is_bit_identical_even_without_spare_cpus(self):
        # The determinism half of the acceptance criterion must hold on any
        # machine, so it is asserted separately from the timing (on a smaller
        # slice of the grid to stay cheap).
        spec = CampaignSpec(
            name="campaign-scaling-determinism",
            protocols=ACCEPTANCE_GRID.protocols[:2],
            group_sizes=(20,),
            losses=(0.0, 0.1),
            mobilities={"rwp": dict(ACCEPTANCE_GRID.mobilities[0][1], duration=60.0)},
            engines=ACCEPTANCE_GRID.engines,
            seed="scaling-bench",
        )
        serial = run_campaign(spec, workers=1)
        sharded = run_campaign(spec, workers=WORKERS)
        assert sharded.deterministic_rows() == serial.deterministic_rows()

    def test_content_hash_cache_replays_unchanged_cells(self, tmp_path, bench_artifact):
        # A re-run over an unchanged spec must be served entirely from the
        # content-hash cache; the artifact pins the measured hit rate.
        spec = CampaignSpec(
            name="campaign-scaling-cache",
            protocols=ACCEPTANCE_GRID.protocols[:2],
            group_sizes=(8,),
            losses=(0.0, 0.1),
            seed="cache-bench",
        )
        cold = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        warm = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        total = warm.cache_hits + warm.cache_misses
        hit_rate = warm.cache_hits / total if total else 0.0
        bench_artifact.record("cache_hit_rate_rerun", round(hit_rate, 3))
        bench_artifact.record(
            "cache_cold_seconds", round(cold.wall_seconds, 3)
        )
        bench_artifact.record(
            "cache_warm_seconds", round(warm.wall_seconds, 3)
        )
        assert hit_rate == 1.0
        assert warm.deterministic_rows() == cold.deterministic_rows()
