"""Cluster scaling: hierarchical rekeying vs flat BD re-execution.

The hierarchical protocol's claim is that a membership event touches one
cluster plus the O(log n) tree path instead of the whole group.  This
benchmark measures it head to head: at each group size, establish the group
under flat ``bd-unauthenticated`` and under ``cluster-tree[bd]``, apply one
leave and one join to each, and record wall time, rekey message counts and
rekey bits on the shared medium.  The flat protocol re-runs the full GKA on
every event (2n messages, O(n^2) work); the cluster protocol re-runs one
sub-ring of ~sqrt(n) members plus the dirty tree path.

Asserted shape claims:

* every run (flat and cluster, every event) ends in full key agreement;
* the cluster rekey moves **at least 5x fewer bits** than the flat rekey at
  every measured size (the ISSUE's acceptance bound, set at n=2000 — the
  measured margin is >20x from n=100 up);
* cluster rekey traffic grows sublinearly in n while flat traffic grows
  linearly (the localisation claim, checked across the size grid).

Sizes default to ``100,500`` so the tier-1 run stays fast; the committed
trajectory point was generated with ``REPRO_CLUSTER_SIZES=100,500,2000``
(the paper-scale point takes minutes of pure-Python flat-BD re-execution,
which is exactly the cost the hierarchy removes).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.registry import create_protocol
from repro.network.events import JoinEvent, LeaveEvent
from repro.network.medium import BroadcastMedium
from repro.pki import Identity

SIZES = tuple(
    int(token)
    for token in os.environ.get("REPRO_CLUSTER_SIZES", "100,500").split(",")
    if token.strip()
)

#: Acceptance bound: cluster rekey bits must undercut flat rekey bits 5x.
REQUIRED_BITS_RATIO = 5.0


def _measure(setup, protocol_name: str, n: int):
    """Establish, then rekey once by leave and once by join; return metrics."""
    members = [Identity(f"scale-{i:04d}") for i in range(n)]
    protocol = create_protocol(protocol_name, setup)
    medium = BroadcastMedium()

    started = time.perf_counter()
    result = protocol.run(members, medium=medium, seed=f"scale-{n}")
    establish_s = time.perf_counter() - started
    assert result.all_agree()

    metrics = {"establish_s": round(establish_s, 4)}
    state = result.state
    clusters = getattr(state, "clusters", None)
    leaving = clusters[-1].members[-1] if clusters else state.members[-1]
    events = (
        ("leave", LeaveEvent(leaving=leaving)),
        ("join", JoinEvent(joining=Identity(f"scale-new-{n}"))),
    )
    for kind, event in events:
        mark_msgs = medium.total_messages()
        mark_bits = medium.total_bits()
        started = time.perf_counter()
        outcome = protocol.apply_event(state, event, medium=medium, seed=kind)
        wall = time.perf_counter() - started
        assert outcome.all_agree()
        state = outcome.state
        metrics[f"{kind}_s"] = round(wall, 4)
        metrics[f"{kind}_messages"] = medium.total_messages() - mark_msgs
        metrics[f"{kind}_bits"] = medium.total_bits() - mark_bits
    metrics["rekey_bits"] = metrics["leave_bits"] + metrics["join_bits"]
    metrics["rekey_messages"] = metrics["leave_messages"] + metrics["join_messages"]
    return metrics


@pytest.fixture(scope="module")
def grid(small_setup, bench_artifact):
    """The full size grid, measured once and shared by every assertion."""
    rows = {}
    started = time.perf_counter()
    for n in SIZES:
        flat = _measure(small_setup, "bd-unauthenticated", n)
        cluster = _measure(small_setup, "cluster-tree[bd]", n)
        rows[n] = {
            "flat": flat,
            "cluster": cluster,
            "rekey_bits_ratio": round(flat["rekey_bits"] / cluster["rekey_bits"], 2),
            "rekey_messages_ratio": round(
                flat["rekey_messages"] / cluster["rekey_messages"], 2
            ),
        }
        bench_artifact.record(f"n{n}", rows[n])
    bench_artifact.record("sizes", list(SIZES))
    # The grid is built in a module-scoped fixture, outside the autouse
    # per-test timer — record its wall time explicitly so the regression
    # gate compares the real measurement cost, not collection noise.
    bench_artifact.record_test("grid_measurement", time.perf_counter() - started)
    return rows


class TestClusterScaling:
    def test_size_grid_is_sane(self):
        assert SIZES == tuple(sorted(SIZES))
        assert all(n >= 20 for n in SIZES)

    @pytest.mark.parametrize("n", SIZES)
    def test_cluster_rekey_moves_5x_fewer_bits(self, grid, n):
        row = grid[n]
        assert row["rekey_bits_ratio"] >= REQUIRED_BITS_RATIO, (
            f"n={n}: flat rekey {row['flat']['rekey_bits']} bits vs cluster "
            f"{row['cluster']['rekey_bits']} bits — ratio "
            f"{row['rekey_bits_ratio']} below {REQUIRED_BITS_RATIO}"
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_cluster_rekey_is_faster_wall_clock(self, grid, n):
        row = grid[n]
        flat_s = row["flat"]["leave_s"] + row["flat"]["join_s"]
        cluster_s = row["cluster"]["leave_s"] + row["cluster"]["join_s"]
        assert cluster_s < flat_s

    def test_cluster_traffic_grows_sublinearly(self, grid):
        if len(SIZES) < 2:
            pytest.skip("need at least two sizes to compare growth")
        low, high = SIZES[0], SIZES[-1]
        scale = high / low
        flat_growth = grid[high]["flat"]["rekey_messages"] / grid[low]["flat"]["rekey_messages"]
        cluster_growth = (
            grid[high]["cluster"]["rekey_messages"]
            / grid[low]["cluster"]["rekey_messages"]
        )
        # Flat re-execution is Θ(n) messages per rekey; the cluster rekey is
        # one sub-ring plus the tree path, i.e. ~O(sqrt n + log n).
        assert flat_growth > 0.8 * scale
        assert cluster_growth < 0.5 * scale

    def test_report(self, grid):
        print()
        header = (
            f"{'n':>6} {'flat rekey b':>13} {'cluster rekey b':>16} "
            f"{'bits ratio':>11} {'msg ratio':>10}"
        )
        print(header)
        for n, row in grid.items():
            print(
                f"{n:>6} {row['flat']['rekey_bits']:>13} "
                f"{row['cluster']['rekey_bits']:>16} "
                f"{row['rekey_bits_ratio']:>11.1f} {row['rekey_messages_ratio']:>10.1f}"
            )
