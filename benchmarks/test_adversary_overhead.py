"""Adversary-instrumentation overhead on the no-attack path (n=50 mobility).

The adversary subsystem adds a tap consultation to every physical send and
an interception/injection check to every kernel transmission.  This
benchmark pins two claims on the acceptance-sized workload (50 random
waypoint nodes, emergent churn, multi-hop relaying):

* attaching a *passive* adversary changes nothing measurable: per-member
  energy ledgers, traffic counters and keys are bit-identical to the honest
  run;
* the instrumentation's wall-time overhead on the honest path stays within
  noise (the run is dominated by modular arithmetic, not by the taps).

Printed alongside: the attacked variant of the same workload, so the cost of
an *active* adversary is visible next to the passive bound.
"""

from __future__ import annotations

import time

import pytest

from repro.adversary import AdversaryConfig
from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.sim import Scenario, ScenarioRunner

GROUP_SIZE = 50
PROTOCOL = "proposed"

#: Generous wall-time ratio bound: shared-CI boxes jitter, and a false red
#: here would be pure noise.  The real regression guard is the bit-identical
#: assertion — any adversary-path work leaking into honest runs shows up
#: there first.
MAX_OVERHEAD_RATIO = 1.5


@pytest.fixture(scope="module")
def mobility_scenario():
    return Scenario(
        name="adversary-overhead",
        initial_size=GROUP_SIZE,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(900.0, 900.0),
            tx_range=220.0,
            duration=120.0,
            tick=2.0,
            edge_loss=0.15,
            settle_ticks=2,
        ),
        seed="b18",
    )


@pytest.fixture(scope="module")
def overhead_runs(small_setup, mobility_scenario, wlan_profile):
    runner = ScenarioRunner(small_setup, device=wlan_profile)
    results = {}
    # Honest first and tapped second, then honest again: taking the best
    # honest wall-time of two runs debiases warm-up effects in the ratio.
    for label, scenario in (
        ("honest-warmup", mobility_scenario),
        ("tapped", mobility_scenario.with_adversary(AdversaryConfig())),
        ("honest", mobility_scenario),
    ):
        started = time.perf_counter()
        report = runner.run(PROTOCOL, scenario)
        results[label] = (report, time.perf_counter() - started)
    return results


def test_print_overhead(overhead_runs):
    print()
    for label, (report, wall) in overhead_runs.items():
        print(
            f"{label:<14} wall={wall:6.2f}s energy={report.total_energy_j:.6f} J "
            f"messages={report.total_messages} attacks={report.total_attacks}"
        )
    honest_wall = min(overhead_runs["honest"][1], overhead_runs["honest-warmup"][1])
    tapped_wall = overhead_runs["tapped"][1]
    print(f"passive-tap overhead ratio: {tapped_wall / honest_wall:.3f}x")


def test_passive_adversary_is_bit_identical(overhead_runs):
    honest, _ = overhead_runs["honest"]
    tapped, _ = overhead_runs["tapped"]
    assert honest.per_member_energy_j() == tapped.per_member_energy_j()
    assert honest.total_messages == tapped.total_messages
    assert honest.total_bits(include_retries=True) == tapped.total_bits(include_retries=True)
    assert honest.total_transmissions == tapped.total_transmissions
    assert [r.kind for r in honest.records] == [r.kind for r in tapped.records]
    assert tapped.total_attacks == 0
    assert tapped.agreed_throughout and honest.agreed_throughout


def test_instrumentation_overhead_within_noise(overhead_runs):
    honest_wall = min(overhead_runs["honest"][1], overhead_runs["honest-warmup"][1])
    tapped_wall = overhead_runs["tapped"][1]
    assert tapped_wall <= honest_wall * MAX_OVERHEAD_RATIO, (
        f"passive adversary instrumentation cost {tapped_wall / honest_wall:.2f}x "
        f"on the no-attack path (budget {MAX_OVERHEAD_RATIO}x)"
    )


def test_active_attack_on_the_same_workload_is_classified(
    small_setup, mobility_scenario, wlan_profile
):
    # The same n=50 emergent-churn workload under injection: the proposed
    # protocol must detect (abort) or resist (recover) — never fall silently.
    runner = ScenarioRunner(small_setup, device=wlan_profile, check_agreement=False)
    report = runner.run(
        PROTOCOL, mobility_scenario.with_adversary(AdversaryConfig.preset("inject"))
    )
    assert report.total_attacks > 0
    assert report.security_verdict in ("detected", "resisted")
