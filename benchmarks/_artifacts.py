"""Machine-readable benchmark artifacts: ``BENCH_<module>.json``.

Every benchmark module emits one artifact on teardown (see the autouse timer
fixture in ``conftest.py``): per-test wall times, the active crypto backend,
interpreter/platform identification and whatever domain metrics the module
records explicitly (energy totals, sim-latency percentiles, cache hit rates,
speedups).  Fresh artifacts land in ``benchmarks/artifacts/`` (override with
``$REPRO_BENCH_DIR``); the committed reference points live in
``benchmarks/trajectory/`` and ``check_regression.py`` compares the two.

Schema (version 1)::

    {
      "schema": 1,
      "name": "<module name without the test_ prefix>",
      "backend": "pure" | "native",
      "python": "3.x.y",
      "platform": "...",
      "wall_seconds": {"<test name>": <float>, ...},
      "total_wall_seconds": <float>,
      "metrics": {"<key>": <json value>, ...}
    }
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict

__all__ = ["SCHEMA_VERSION", "BenchArtifact", "artifact_dir", "trajectory_dir"]

SCHEMA_VERSION = 1


def artifact_dir() -> Path:
    """Where fresh artifacts go (``$REPRO_BENCH_DIR`` or ``benchmarks/artifacts``)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "artifacts"


def trajectory_dir() -> Path:
    """The committed reference points the regression gate compares against."""
    return Path(__file__).resolve().parent / "trajectory"


class BenchArtifact:
    """Collects one module's measurements; written once at module teardown."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_seconds: Dict[str, float] = {}
        self.metrics: Dict[str, object] = {}

    def record(self, key: str, value: object) -> None:
        """Attach one domain metric (must be JSON-serializable)."""
        self.metrics[key] = value

    def record_test(self, test_name: str, wall_s: float) -> None:
        self.wall_seconds[test_name] = round(wall_s, 6)

    def as_dict(self) -> Dict[str, object]:
        from repro.backends import active_backend

        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "backend": active_backend().name,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "wall_seconds": dict(sorted(self.wall_seconds.items())),
            "total_wall_seconds": round(sum(self.wall_seconds.values()), 6),
            "metrics": dict(sorted(self.metrics.items())),
        }

    def write(self) -> Path:
        directory = artifact_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path
