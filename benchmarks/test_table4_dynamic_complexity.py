"""Reproduce Table 4: complexity of the dynamic protocols vs. BD re-execution."""

from __future__ import annotations

import pytest

from repro.analysis import DynamicComplexityParams, format_table, table4_complexity
from repro.baselines import BDRerunDynamic
from repro.core import JoinProtocol, LeaveProtocol, MergeProtocol, PartitionProtocol, ProposedGKAProtocol
from repro.pki import Identity


def test_print_table4():
    """Regenerate Table 4 with the paper's parameters (n=100, m=20, ld=20)."""
    rows = table4_complexity(DynamicComplexityParams(n=100, m=20, k=2, ld=20))
    print()
    print(
        format_table(
            ["protocol", "event", "rounds", "messages", "exponentiations", "sign gen", "sign ver"],
            [list(row.as_dict().values()) for row in rows],
            title="Table 4 — dynamic protocol complexity (n=100, m=20, ld=20)",
        )
    )
    by_key = {(r.protocol, r.event): r for r in rows}
    # Headline claims: the proposed dynamic protocols need O(1) public-key work
    # and far fewer messages for join/merge.
    assert by_key[("proposed", "join")].messages < by_key[("bd-rerun", "join")].messages / 20
    assert by_key[("proposed", "merge")].messages < by_key[("bd-rerun", "merge")].messages / 20
    for event in ("join", "leave", "merge", "partition"):
        assert by_key[("proposed", event)].signature_verifications == 1
        assert by_key[("bd-rerun", event)].signature_verifications > 100 - 25


def test_measured_dynamic_costs(small_setup):
    """Cross-check the proposed rows against executed runs on a 8-member group."""
    members = [Identity(f"t4-{i}") for i in range(8)]
    base = ProposedGKAProtocol(small_setup).run(members, seed="t4")

    # Join: exactly 5 protocol messages (2n+2-style rerun would need 18).
    base.state.reset_costs()
    joined = JoinProtocol(small_setup).run(base.state, Identity("t4-new"), seed=1)
    assert joined.medium.total_messages() == 5 - 1  # m'''_n is unicast; 4 broadcasts + it = 5 sends
    assert joined.rounds == 3

    # Leave: Round 1 has one message per remaining odd-indexed member,
    # Round 2 one per remaining member.
    leaving = joined.state.ring.members[3]
    remaining = joined.state.size - 1
    odd_remaining = len(joined.state.ring.odd_indexed(exclude=[leaving]))
    left = LeaveProtocol(small_setup).run(joined.state, leaving, seed=2)
    assert left.medium.total_messages() == odd_remaining + remaining
    assert left.rounds == 2

    # Merge: exactly 6 messages for k = 2 groups.
    other = ProposedGKAProtocol(small_setup).run([Identity(f"t4-b-{i}") for i in range(4)], seed="t4-b")
    merged = MergeProtocol(small_setup).run(left.state, other.state, seed=3)
    assert merged.medium.total_messages() == 6
    assert merged.rounds == 3

    # Partition: same two-round shape as leave.
    victims = [merged.state.ring.members[i] for i in (2, 5)]
    remaining = merged.state.size - len(victims)
    odd_remaining = len(merged.state.ring.odd_indexed(exclude=victims))
    partitioned = PartitionProtocol(small_setup).run(merged.state, victims, seed=4)
    assert partitioned.medium.total_messages() == odd_remaining + remaining
    assert partitioned.rounds == 2


def test_benchmark_join_vs_rerun(benchmark, small_setup):
    """Benchmark one proposed Join against one BD re-run join (n = 6)."""
    members = [Identity(f"t4b-{i}") for i in range(6)]

    def run_join():
        base = ProposedGKAProtocol(small_setup).run(members, seed="bench")
        return JoinProtocol(small_setup).run(base.state, Identity("t4b-new"), seed="bench-join")

    result = benchmark(run_join)
    assert result.all_agree()


def test_benchmark_bd_rerun_join(benchmark, small_setup):
    """The baseline's cost for the same event (for comparison in the report)."""
    members = [Identity(f"t4c-{i}") for i in range(6)]
    dynamic = BDRerunDynamic(small_setup)
    base = dynamic.establish(members, seed="bench")

    result = benchmark(lambda: dynamic.join(base.state, Identity("t4c-new"), seed="bench-join"))
    assert result.all_agree()
