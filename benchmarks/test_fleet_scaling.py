"""Fleet scaling: distributed orchestration must not tax the campaign.

The fleet layer (controller + TCP workers, :mod:`repro.fleet`) re-runs the
campaign-scaling question across a real socket boundary:

* **determinism first** — a fleet of two socket workers must assemble the
  exact rows ``run_campaign(workers=1)`` produces, on any machine (this half
  is unconditional);
* **throughput second** — with real cores to spend, two workers must beat
  the serial loop (gated on CPU count like the campaign-scaling bound; set
  ``FLEET_SCALING_STRICT=1`` to fail instead of skip);
* **orchestration overhead** — dispatch framing, heartbeats and streamed
  assembly must stay a small multiple of the serial loop even on one core,
  pinned via the recorded metrics rather than a hard assert (one-core boxes
  time-slice two workers, so wall time there measures the scheduler, not us).

The module's ``BENCH_fleet_scaling.json`` artifact records the cell count,
serial and fleet wall times, the speedup, and the streamed row rate, feeding
the committed perf trajectory (``check_regression.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.fleet import run_fleet_campaign

FLEET_GRID = CampaignSpec(
    name="fleet-scaling",
    protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
    group_sizes=(12,),
    losses=(0.0, 0.1),
    schedule={"kind": "poisson", "length": 4},
    engines=("fixed:0.002",),
    seed="fleet-bench",
)

WORKERS = 2
REQUIRED_SPEEDUP = 1.3


def _enough_cpus() -> bool:
    return (os.cpu_count() or 1) >= WORKERS + 1  # workers plus the controller


class TestFleetScaling:
    def test_grid_shape(self):
        assert len(FLEET_GRID.cells()) == 3 * 2

    def test_fleet_is_bit_identical_to_serial_and_streams_rows(self, bench_artifact):
        started = time.perf_counter()
        serial = run_campaign(FLEET_GRID, workers=1)
        serial_s = time.perf_counter() - started

        snapshots = []
        started = time.perf_counter()
        fleet = run_fleet_campaign(
            FLEET_GRID, workers=WORKERS, on_progress=snapshots.append
        )
        fleet_s = time.perf_counter() - started

        assert serial.failures() == [] and fleet.failures() == []
        assert fleet.deterministic_rows() == serial.deterministic_rows()
        # Rows stream in as they finish, not all at once at the end.
        done_counts = sorted({snapshot.done for snapshot in snapshots})
        assert len(done_counts) > 2
        assert snapshots[-1].complete

        speedup = serial_s / fleet_s if fleet_s else float("inf")
        rate = snapshots[-1].rows_per_s
        print(
            f"\nfleet scaling: {len(serial.rows)} cells, "
            f"serial {serial_s:.2f}s vs {WORKERS} socket workers {fleet_s:.2f}s "
            f"-> {speedup:.2f}x, {rate:.1f} rows/s streamed"
        )
        bench_artifact.record("cells", len(serial.rows))
        bench_artifact.record("serial_seconds", round(serial_s, 3))
        bench_artifact.record(f"fleet_{WORKERS}w_seconds", round(fleet_s, 3))
        bench_artifact.record("fleet_speedup", round(speedup, 3))
        bench_artifact.record("rows_per_s", round(rate, 3))

    @pytest.mark.skipif(
        not _enough_cpus() and not os.environ.get("FLEET_SCALING_STRICT"),
        reason=f"speedup bound needs >= {WORKERS + 1} CPUs (found {os.cpu_count()})",
    )
    def test_two_socket_workers_beat_the_serial_loop(self, bench_artifact):
        run_campaign(  # warm the parameter caches the forked workers inherit
            CampaignSpec(
                name="fleet-scaling-warmup",
                protocols=FLEET_GRID.protocols,
                group_sizes=(4,),
                seed="warmup",
            ),
            workers=1,
        )
        started = time.perf_counter()
        serial = run_campaign(FLEET_GRID, workers=1)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        fleet = run_fleet_campaign(FLEET_GRID, workers=WORKERS)
        fleet_s = time.perf_counter() - started

        assert fleet.deterministic_rows() == serial.deterministic_rows()
        speedup = serial_s / fleet_s if fleet_s else float("inf")
        bench_artifact.record("gated_fleet_speedup", round(speedup, 3))
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x with {WORKERS} socket workers, "
            f"got {speedup:.2f}x ({serial_s:.2f}s -> {fleet_s:.2f}s)"
        )

    def test_warm_cache_fleet_run_short_circuits(self, tmp_path, bench_artifact):
        # A fully cached campaign forks no workers and ships no cells; the
        # whole "run" is the plan replaying rows from disk.
        cold = run_fleet_campaign(FLEET_GRID, workers=WORKERS, cache_dir=str(tmp_path))
        started = time.perf_counter()
        warm = run_fleet_campaign(FLEET_GRID, workers=WORKERS, cache_dir=str(tmp_path))
        warm_s = time.perf_counter() - started
        assert (warm.cache_hits, warm.cache_misses) == (len(FLEET_GRID.cells()), 0)
        assert warm.deterministic_rows() == cold.deterministic_rows()
        bench_artifact.record("cache_warm_fleet_seconds", round(warm_s, 3))
        assert warm_s < 5.0  # no fleet, no simulation — just disk replay
