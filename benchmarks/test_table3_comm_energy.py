"""Reproduce Table 3: communication energy costs per payload and transceiver."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.energy import CommunicationCostTable, PAPER_TABLE3_MJ, PAYLOAD_BITS
from repro.mathutils.rand import DeterministicRNG
from repro.pki import Identity
from repro.signatures import ECDSASignatureScheme, GQSignatureScheme


def test_print_table3():
    """Regenerate Table 3 and check every row against the paper."""
    table = CommunicationCostTable()
    rows = []
    for payload in sorted(PAYLOAD_BITS):
        rows.append(
            [
                payload,
                PAYLOAD_BITS[payload],
                table.cost_mj(payload, "tx", "100kbps"),
                table.cost_mj(payload, "rx", "100kbps"),
                table.cost_mj(payload, "tx", "wlan"),
                table.cost_mj(payload, "rx", "wlan"),
            ]
        )
    print()
    print(
        format_table(
            ["payload", "bits", "tx 100kbps (mJ)", "rx 100kbps (mJ)", "tx WLAN (mJ)", "rx WLAN (mJ)"],
            rows,
            title="Table 3 — communication energy cost",
        )
    )
    print()
    per_bit = table.per_bit_rows()
    print(
        format_table(
            ["direction/transceiver", "uJ per bit"],
            [[f"{d}/{t}", v] for (d, t), v in sorted(per_bit.items())],
        )
    )
    for key, paper_mj in PAPER_TABLE3_MJ.items():
        assert abs(table.cost_mj(*key) - paper_mj) <= max(0.02, 0.02 * paper_mj), key


def test_payload_sizes_match_real_objects(paper_setup):
    """The nominal Table 3 payload sizes match the library's actual objects."""
    rng = DeterministicRNG("table3")
    gq = GQSignatureScheme(paper_setup.gq_params)
    key = paper_setup.enroll(Identity("table3-user"))
    signature = gq.sign(key, b"m", rng)
    assert signature.wire_bits == PAYLOAD_BITS["gq_signature"] == 1184

    ecdsa = ECDSASignatureScheme()
    # secp160r1's group order is 161 bits, so the real signature is 2 bits over
    # the paper's nominal 320; the energy model uses the nominal size.
    assert abs(ecdsa.signature_bits - PAYLOAD_BITS["ecdsa_signature"]) <= 2

    from repro.pki import CertificateAuthority

    ca = CertificateAuthority(ecdsa, rng)
    certificate = ca.issue(Identity("table3-cert"), ecdsa.generate_keypair(rng).public)
    assert certificate.wire_bits == PAYLOAD_BITS["ecdsa_certificate"] == 688


def test_benchmark_cost_table_generation(benchmark):
    """Regenerating the full table is effectively free (sanity benchmark)."""
    table = CommunicationCostTable()
    result = benchmark(table.as_table)
    assert len(result) == 24
