"""Scenario-engine benchmark: 100 members under 50 churn events.

The acceptance workload for the sim subsystem: a Poisson join/leave churn
over a 100-member group, driven through the registry against the proposed
protocol, plain BD re-execution, the paper's certificate-based (DSA)
authenticated BD re-execution and the SSN baseline — total energy, message
and wall-time reports side by side, with every member agreeing on the key
after every event.  It also pins the performance layer: the fixed-base
``g^x`` cache must beat cold ``pow`` by a measurable factor on the
paper-sized group.
"""

from __future__ import annotations

import time

import pytest

from repro.groups.params import get_schnorr_group
from repro.mathutils.rand import DeterministicRNG
from repro.sim import PoissonChurn, Scenario, ScenarioRunner, comparison_table

GROUP_SIZE = 100
EVENTS = 50
PROTOCOLS = ("proposed", "bd", "bd-dsa", "ssn")


@pytest.fixture(scope="module")
def churn_scenario():
    return Scenario(
        name="churn-100",
        initial_size=GROUP_SIZE,
        schedule=PoissonChurn(length=EVENTS, join_rate=3.0, leave_rate=3.0),
        seed="bench-churn",
    )


@pytest.fixture(scope="module")
def churn_reports(small_setup, churn_scenario, wlan_profile):
    runner = ScenarioRunner(small_setup, device=wlan_profile)
    reports = {}
    walls = {}
    for name in PROTOCOLS:
        started = time.perf_counter()
        reports[name] = runner.run(name, churn_scenario)
        walls[name] = time.perf_counter() - started
    return reports, walls


def test_print_churn_comparison(churn_reports, bench_artifact):
    """The 100-member, 50-event scenario across all four protocols."""
    reports, walls = churn_reports
    print()
    print(comparison_table([reports[name] for name in PROTOCOLS]))
    for name in PROTOCOLS:
        print(f"host wall-time {name}: {walls[name]:.2f}s")
        bench_artifact.record(f"wall_seconds_{name}", round(walls[name], 4))
        bench_artifact.record(f"energy_j_{name}", round(reports[name].total_energy_j, 6))


def test_churn_completes_with_agreement(churn_reports):
    reports, _ = churn_reports
    streams = []
    for report in reports.values():
        assert report.agreed_throughout
        assert len(report.events) == EVENTS
        streams.append([(r.kind, r.time) for r in report.records])
    # The same deterministic event stream hit every protocol.
    assert all(stream == streams[0] for stream in streams[1:])


def test_proposed_dynamic_protocols_beat_authenticated_reexecution(churn_reports):
    """The paper's headline at scenario scale: churn under the proposed
    dynamic protocols costs a fraction of re-running an *authenticated* GKA
    (the cert-based baseline of Tables 4/5) on every event."""
    reports, _ = churn_reports
    proposed_j = sum(r.total_energy_j for r in reports["proposed"].events)
    dsa_rerun_j = sum(r.total_energy_j for r in reports["bd-dsa"].events)
    ssn_rerun_j = sum(r.total_energy_j for r in reports["ssn"].events)
    assert proposed_j * 10 < dsa_rerun_j
    assert proposed_j * 10 < ssn_rerun_j
    # Even against the unauthenticated cost floor, joins (most of the churn)
    # are an order of magnitude cheaper for the proposed Join protocol.
    proposed_join = reports["proposed"].by_kind()["join"].mean_energy_j
    bd_join = reports["bd"].by_kind()["join"].mean_energy_j
    assert proposed_join * 5 < bd_join


def test_fixed_base_cache_beats_cold_pow(bench_artifact):
    """Round 1's ``g^{r_i}`` via the warm fixed-base table vs cold ``pow``.

    Paper-sized parameters (1024-bit p, 160-bit q): the windowed table does
    ~32 multiplications per exponentiation where square-and-multiply does
    ~240 operations.  Results must stay bit-identical.
    """
    group = get_schnorr_group("ipps2006-1024")
    rng = DeterministicRNG("fixed-base-bench")
    exponents = [group.random_exponent(rng) for _ in range(400)]
    group.exp_g(exponents[0])  # build the table outside the timed region

    best_fixed = min(_time(lambda: [group.exp_g(e) for e in exponents]) for _ in range(3))
    best_cold = min(_time(lambda: [pow(group.g, e, group.p) for e in exponents]) for _ in range(3))
    assert [group.exp_g(e) for e in exponents] == [pow(group.g, e, group.p) for e in exponents]
    speedup = best_cold / best_fixed
    print(f"\nfixed-base: {best_fixed:.4f}s  cold pow: {best_cold:.4f}s  speedup: {speedup:.2f}x")
    bench_artifact.record("fixed_base_speedup", round(speedup, 3))
    # Empirically ~5x on CPython; 1.5x leaves generous headroom for slow CI.
    assert speedup > 1.5


def _time(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started
