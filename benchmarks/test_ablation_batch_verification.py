"""Ablation benchmarks (beyond the paper's tables).

Two design choices drive the proposed protocol's energy advantage; these
benches quantify each in isolation:

1. **Batch verification** — replace the single batch equation with n-1
   individual GQ verifications (everything else identical) and watch the
   per-node energy become linear in n again.
2. **Transceiver crossover** — on the 100 kbps radio the GQ signature's large
   wire size (1184 bits) costs real energy; the bench sweeps n to show where
   communication starts to dominate computation for each protocol.

Host-side, a third ablation: :meth:`SignatureScheme.batch_verify` replaces
the n-1 independent verifications of an authenticated round with one
multi-exponentiation over a random linear combination.  The measured test
times the real inner loop (ECDSA, fresh signatures, memo cleared) and pins
the speedup, which also lands in this module's BENCH artifact.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import MESSAGE_SIZES_BITS, format_table, initial_gka_energy_j
from repro.backends import active_backend
from repro.energy import OperationCostTable, RADIO_100KBPS, WLAN_SPECTRUM24
from repro.mathutils.rand import DeterministicRNG
from repro.signatures.ecdsa import ECDSASignatureScheme


def _proposed_without_batching_j(n: int, transceiver) -> float:
    """Closed-form energy of the proposed protocol with individual verification."""
    costs = OperationCostTable()
    comp_mj = (
        3 * costs.energy_mj("modexp")
        + costs.energy_mj("sign_gen_gq")
        + (n - 1) * costs.energy_mj("sign_ver_gq")
    )
    per_round = MESSAGE_SIZES_BITS["identity"] + MESSAGE_SIZES_BITS["group_element"] + MESSAGE_SIZES_BITS["gq_modulus_element"]
    comm_mj = transceiver.tx_energy_mj(2 * per_round) + transceiver.rx_energy_mj(2 * per_round * (n - 1))
    return (comp_mj + comm_mj) / 1000.0


def test_batch_verification_ablation():
    """Batch verification is what keeps the computation O(1) in n."""
    rows = []
    for n in (10, 50, 100, 500):
        batched = initial_gka_energy_j("proposed", n, WLAN_SPECTRUM24)
        unbatched = _proposed_without_batching_j(n, WLAN_SPECTRUM24)
        rows.append([n, batched, unbatched, unbatched / batched])
    print()
    print(
        format_table(
            ["n", "with batch verify (J)", "individual verify (J)", "ratio"],
            rows,
            title="Ablation — batch vs. individual GQ verification (WLAN)",
        )
    )
    # At n=500 individual verification costs several times more.
    assert rows[-1][3] > 4.0
    # At n=10 the difference is modest (the ablation matters at scale).
    assert rows[0][3] < 3.5
    assert rows[0][3] < rows[-1][3]


def test_transceiver_crossover():
    """On the 100 kbps radio, reception costs dominate for large groups."""
    rows = []
    for n in (10, 50, 100, 500):
        wlan = initial_gka_energy_j("proposed", n, WLAN_SPECTRUM24)
        radio = initial_gka_energy_j("proposed", n, RADIO_100KBPS)
        rows.append([n, wlan, radio, radio / wlan])
    print()
    print(
        format_table(
            ["n", "WLAN (J)", "100kbps radio (J)", "radio/WLAN"],
            rows,
            title="Ablation — transceiver choice for the proposed protocol",
        )
    )
    # The radio penalty grows with n because it is a per-bit (communication) effect.
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10


def test_benchmark_closed_form_sweep(benchmark):
    """The whole ablation sweep is itself cheap to compute."""
    def sweep():
        return [
            (_proposed_without_batching_j(n, WLAN_SPECTRUM24), initial_gka_energy_j("proposed", n, WLAN_SPECTRUM24))
            for n in (10, 50, 100, 500)
        ]

    values = benchmark(sweep)
    assert len(values) == 4


def test_measured_batch_verification_speedup(bench_artifact):
    """Host-time ablation: ECDSA ``batch_verify`` vs the per-item loop.

    The workload is the authenticated round's inner loop — one receiver
    checking k fresh signatures from distinct signers — with the
    verification memo cleared before every timed pass, so both sides do real
    arithmetic.  The batch side folds everything into a single interleaved
    multi-scalar multiplication; on the pure backend that amortises the
    field inversion every point operation pays, and with gmpy2 the combined
    chain wins by an even wider margin.
    """
    k = 48
    rng = DeterministicRNG("batch-verify-bench")
    scheme = ECDSASignatureScheme()
    items = []
    for index in range(k):
        keypair = scheme.generate_keypair(rng)
        message = f"round2|{index}".encode()
        items.append((keypair, message, scheme.sign(keypair, message, rng)))

    def loop_verify():
        scheme._verify_cache.clear()
        return [scheme.verify(pk, msg, sig) for pk, msg, sig in items]

    def batch_verify():
        scheme._verify_cache.clear()
        return scheme.batch_verify(items, rng.fork("coefficients"))

    assert loop_verify() == [True] * k == batch_verify()

    best_loop = min(_time(loop_verify) for _ in range(3))
    best_batch = min(_time(batch_verify) for _ in range(3))
    speedup = best_loop / best_batch
    print(
        f"\nECDSA k={k}: loop {best_loop:.4f}s  batch {best_batch:.4f}s  "
        f"speedup {speedup:.2f}x  (backend: {active_backend().name})"
    )
    bench_artifact.record("ecdsa_batch_k", k)
    bench_artifact.record("ecdsa_loop_seconds", round(best_loop, 6))
    bench_artifact.record("ecdsa_batch_seconds", round(best_batch, 6))
    bench_artifact.record("ecdsa_batch_speedup", round(speedup, 3))
    # Empirically ~3.9x pure-Python at k=48 (and >10x with gmpy2); 3x is the
    # acceptance floor.
    assert speedup >= 3.0


def _time(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started
