"""Tier scenario benchmark: the cost of a satellite relay tier.

The multi-tier network layer puts one group member behind a GEO-class relay
(1 Mbps uplink / 10 Mbps downlink, 250 ms one-way propagation) bridged by the
controller as gateway, and compares three topologies under the same churn
workload: the flat 2 Mbps ground segment, the clean satellite relay, and a
satellite with Gilbert–Elliott fading (8% long-run loss in ~5-copy bursts).

The benchmark records the completion-latency and energy trajectory per
topology for the proposed protocol and the BD baseline, and asserts the
shape claims the tier model must satisfy:

* the satellite tier dominates completion latency (propagation per round,
  uplink serialization) — an order of magnitude over flat, not a rounding
  error;
* burst loss costs retransmission waves (timeouts / on-air bits) but never
  correctness — every topology agrees throughout;
* the whole grid is deterministic under the master seed.
"""

from __future__ import annotations

import time

import pytest

from repro.network.tiers import TierConfig
from repro.sim import Scenario, ScenarioRunner
from repro.sim.scenarios import BurstPartitions
from repro.sim.specio import build_engine

PROTOCOLS = ("proposed", "bd")
GROUP_SIZE = 12

TOPOLOGIES = {
    "flat": TierConfig(tiers=[("ground", "ground")]),
    "sat": TierConfig(
        tiers={"ground": "ground", "sat": "satellite"},
        members={"sat": 2},
        gateways={"ground:sat": 1},
    ),
    "sat-bursty": TierConfig(
        tiers={"ground": "ground", "sat": "satellite-bursty"},
        members={"sat": 2},
        gateways={"ground:sat": 1},
    ),
}


def _scenario(topology: str) -> Scenario:
    return Scenario(
        name=f"tier-bench-{topology}",
        initial_size=GROUP_SIZE,
        schedule=BurstPartitions(bursts=2, burst_size=2, period=20.0),
        seed="tier-bench",
        tiers=TOPOLOGIES[topology],
    )


@pytest.fixture(scope="module")
def tier_reports(small_setup):
    runner = ScenarioRunner(small_setup, engine=build_engine("tiered"))
    reports = {}
    walls = {}
    for topology in TOPOLOGIES:
        for protocol in PROTOCOLS:
            started = time.perf_counter()
            reports[(topology, protocol)] = runner.run(protocol, _scenario(topology))
            walls[(topology, protocol)] = time.perf_counter() - started
    return reports, walls


class TestTierScenarioBenchmark:
    def test_topology_grid_latency_and_energy(self, tier_reports, bench_artifact):
        reports, walls = tier_reports
        print(f"\n=== n={GROUP_SIZE} churn workload across tier topologies ===")
        print(
            f"{'topology':<12} {'protocol':<10} {'sim s':>9} {'timeouts':>9} "
            f"{'energy J':>10} {'bits+retry':>12} {'host s':>7}"
        )
        for (topology, protocol), report in reports.items():
            print(
                f"{topology:<12} {protocol:<10} {report.total_sim_latency_s:>9.4f} "
                f"{report.total_timeouts:>9} {report.total_energy_j:>10.4f} "
                f"{report.total_bits(include_retries=True):>12} "
                f"{walls[(topology, protocol)]:>7.2f}"
            )
            bench_artifact.record(
                f"{topology}_{protocol}",
                {
                    "sim_latency_s": round(report.total_sim_latency_s, 6),
                    "timeouts": report.total_timeouts,
                    "energy_j": round(report.total_energy_j, 6),
                    "bits_with_retries": report.total_bits(include_retries=True),
                },
            )
        for report in reports.values():
            assert report.agreed_throughout
            assert report.final_size >= 3

    def test_satellite_tier_dominates_latency(self, tier_reports, bench_artifact):
        reports, _ = tier_reports
        for protocol in PROTOCOLS:
            flat = reports[("flat", protocol)].total_sim_latency_s
            sat = reports[("sat", protocol)].total_sim_latency_s
            assert flat > 0.0
            tax = sat / flat
            # 250 ms propagation per cross-tier delivery vs a flat LAN round
            # measured in milliseconds: the relay must cost at least 10x.
            assert tax > 10.0
            bench_artifact.record(f"satellite_tax_{protocol}", round(tax, 2))

    def test_burst_loss_perturbs_delivery_not_correctness(self, tier_reports, bench_artifact):
        reports, _ = tier_reports
        delta_bits = 0
        for protocol in PROTOCOLS:
            clean = reports[("sat", protocol)]
            bursty = reports[("sat-bursty", protocol)]
            assert bursty.agreed_throughout
            delta_bits += abs(
                bursty.total_bits(include_retries=True)
                - clean.total_bits(include_retries=True)
            )
        total_timeouts = sum(
            reports[("sat-bursty", p)].total_timeouts for p in PROTOCOLS
        )
        # The fading channel must demonstrably engage: dropped copies reshape
        # the flood (different on-air bits — a lost copy can even *shrink* a
        # wave, since an uncovered node never relays) or cost timeout waves.
        # A chain that never fired would leave both runs identical.
        assert delta_bits > 0 or total_timeouts > 0
        bench_artifact.record("bursty_delta_bits", int(delta_bits))
        bench_artifact.record("bursty_timeouts", int(total_timeouts))

    def test_grid_is_deterministic(self, tier_reports, small_setup):
        reports, _ = tier_reports
        runner = ScenarioRunner(small_setup, engine=build_engine("tiered"))
        replay = runner.run("proposed", _scenario("sat-bursty"))
        original = reports[("sat-bursty", "proposed")]
        assert replay.key_fingerprint == original.key_fingerprint
        assert replay.total_sim_latency_s == original.total_sim_latency_s
        assert replay.total_bits(include_retries=True) == original.total_bits(
            include_retries=True
        )
