"""Telemetry overhead on the acceptance-sized workload (n=50 mobility).

The telemetry layer promises two things at once: spans and metrics rich
enough to profile a fleet, and **zero observable cost** on the runs being
observed.  This benchmark pins both on the same 50-node random-waypoint
workload the adversary-overhead benchmark uses:

* a fully observed run (tracing *and* metrics installed) produces
  bit-identical science — per-member energy ledgers, traffic counters and
  event kinds match the unobserved run exactly;
* the observed run's wall time stays within a small factor of the
  unobserved one.  The honest-warmup/observed/honest ordering with best-of
  honest debiases warm-up, exactly like ``test_adversary_overhead.py``.

The measured ratio is always recorded in the ``BENCH_telemetry_overhead``
artifact (gated two-sided by ``check_regression.py``'s ``overhead`` metric
gate); the hard ≤``STRICT_OVERHEAD_RATIO`` assertion only arms under
``TELEMETRY_OVERHEAD_STRICT=1`` because shared-CI wall clocks jitter well
past 5% on their own.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import telemetry
from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.sim import Scenario, ScenarioRunner

GROUP_SIZE = 50
PROTOCOL = "proposed"

#: The acceptance bound: a traced+metered run may cost at most 5% extra.
STRICT_OVERHEAD_RATIO = 1.05
#: Fallback bound that always arms — catches gross regressions (an
#: accidentally-unconditional span allocation) even on noisy boxes.
MAX_OVERHEAD_RATIO = 1.5


@pytest.fixture(scope="module")
def mobility_scenario():
    return Scenario(
        name="telemetry-overhead",
        initial_size=GROUP_SIZE,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=3.0, max_speed=12.0),
            area=Area(900.0, 900.0),
            tx_range=220.0,
            duration=120.0,
            tick=2.0,
            edge_loss=0.15,
            settle_ticks=2,
        ),
        seed="b18",
    )


_RUNS: dict = {}


@pytest.fixture(scope="module")
def overhead_runs(small_setup, mobility_scenario, wlan_profile):
    """The three timed runs, computed lazily on first use.

    Deliberately *not* computed at fixture-setup time: module-scoped fixtures
    set up before the per-test wall timer starts, so eager work would vanish
    from the artifact and leave a millisecond-scale ``total_wall_seconds``
    the 25% regression gate could never meaningfully compare against.
    """
    def _compute():
        if _RUNS:
            return _RUNS
        runner = ScenarioRunner(small_setup, device=wlan_profile)
        for label in ("honest-warmup", "observed", "honest"):
            started = time.perf_counter()
            if label == "observed":
                with telemetry.telemetry_session(
                    trace=True, metrics=True
                ) as session:
                    report = runner.run(PROTOCOL, mobility_scenario)
                _RUNS["session"] = session
            else:
                report = runner.run(PROTOCOL, mobility_scenario)
            _RUNS[label] = (report, time.perf_counter() - started)
        return _RUNS

    return _compute


def _ratio(overhead_runs) -> float:
    honest_wall = min(overhead_runs["honest"][1], overhead_runs["honest-warmup"][1])
    return overhead_runs["observed"][1] / honest_wall


def test_print_overhead(overhead_runs, bench_artifact):
    runs = overhead_runs()
    print()
    for label in ("honest-warmup", "observed", "honest"):
        report, wall = runs[label]
        print(
            f"{label:<14} wall={wall:6.2f}s energy={report.total_energy_j:.6f} J "
            f"messages={report.total_messages}"
        )
    session = runs["session"]
    ratio = _ratio(runs)
    print(
        f"observed overhead ratio: {ratio:.3f}x "
        f"({len(session.tracer.spans)} spans, {session.tracer.dropped} dropped)"
    )
    bench_artifact.record("traced_overhead_ratio", round(ratio, 4))
    bench_artifact.record("observed_spans", len(session.tracer.spans))
    bench_artifact.record(
        "observed_counters",
        {
            key: session.metrics.snapshot()["counters"][key]
            for key in ("engine.runs", "engine.tx.messages", "crypto.modexp")
        },
    )


def test_observed_run_is_bit_identical(overhead_runs):
    runs = overhead_runs()
    honest, _ = runs["honest"]
    observed, _ = runs["observed"]
    assert honest.per_member_energy_j() == observed.per_member_energy_j()
    assert honest.total_messages == observed.total_messages
    assert honest.total_bits(include_retries=True) == observed.total_bits(
        include_retries=True
    )
    assert honest.key_fingerprint == observed.key_fingerprint
    assert [r.kind for r in honest.records] == [r.kind for r in observed.records]


def test_observed_run_actually_observed(overhead_runs):
    runs = overhead_runs()
    session = runs["session"]
    report, _ = runs["observed"]
    assert session.tracer.count("party") > 0
    assert session.tracer.count("kernel") > 0
    counters = session.metrics.snapshot()["counters"]
    assert counters["engine.tx.messages"] == report.total_messages
    assert counters["scenario.steps"] == len(report.records)


def test_overhead_within_budget(overhead_runs):
    ratio = _ratio(overhead_runs())
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"telemetry cost {ratio:.2f}x on the observed path "
        f"(gross budget {MAX_OVERHEAD_RATIO}x)"
    )
    if os.environ.get("TELEMETRY_OVERHEAD_STRICT") == "1":
        assert ratio <= STRICT_OVERHEAD_RATIO, (
            f"telemetry cost {ratio:.2f}x on the observed path "
            f"(strict budget {STRICT_OVERHEAD_RATIO}x)"
        )
