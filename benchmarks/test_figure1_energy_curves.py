"""Reproduce Figure 1: per-node energy of the five authenticated GKA protocols
for n in {10, 50, 100, 500} on both transceivers.

Two reproductions are produced:

* the closed-form model (the paper's own methodology), printed as CSV and an
  ASCII log-scale chart;
* a simulation cross-check at n = 8: the real protocols are executed over the
  simulated network and their recorded per-node costs priced on the same
  device models; the resulting protocol ordering must match the closed form.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE1_GROUP_SIZES, INITIAL_PROTOCOLS, figure1_report, figure1_series, initial_gka_energy_j
from repro.baselines import AuthenticatedBDProtocol, SSNProtocol
from repro.core import ProposedGKAProtocol
from repro.energy import RADIO_100KBPS, WLAN_SPECTRUM24
from repro.pki import Identity


def test_print_figure1():
    """Regenerate all ten curves and assert the paper's headline claims."""
    print()
    print(figure1_report(FIGURE1_GROUP_SIZES))
    series = figure1_series(FIGURE1_GROUP_SIZES)
    for index in range(len(FIGURE1_GROUP_SIZES)):
        for transceiver in ("100kbps", "wlan"):
            proposed = series[f"proposed/{transceiver}"][index]
            for protocol in INITIAL_PROTOCOLS:
                if protocol != "proposed":
                    assert proposed < series[f"{protocol}/{transceiver}"][index]
    # The gap grows with n (the whole point of O(1) verification).
    wlan_gap_small = series["bd-ecdsa/wlan"][0] / series["proposed/wlan"][0]
    wlan_gap_large = series["bd-ecdsa/wlan"][-1] / series["proposed/wlan"][-1]
    assert wlan_gap_large > wlan_gap_small


def test_simulation_cross_check(small_setup, wlan_profile, radio_profile):
    """Run the real protocols at n = 8 and compare orderings with the model."""
    n = 8
    members = [Identity(f"fig1-{i}") for i in range(n)]
    runs = {
        "proposed": ProposedGKAProtocol(small_setup).run(members, seed=1),
        "bd-ecdsa": AuthenticatedBDProtocol(small_setup, "ecdsa").run(members, seed=1),
        "bd-dsa": AuthenticatedBDProtocol(small_setup, "dsa").run(members, seed=1),
        "bd-sok": AuthenticatedBDProtocol(small_setup, "sok").run(members, seed=1),
        "ssn": SSNProtocol(small_setup).run(members, seed=1),
    }
    for profile, transceiver_name in ((wlan_profile, "wlan"), (radio_profile, "100kbps")):
        measured = {
            name: max(profile.total_j(rec) for rec in result.state.recorders().values())
            for name, result in runs.items()
        }
        modelled = {name: initial_gka_energy_j(name, n, profile.transceiver) for name in runs}
        print(f"\nsimulated vs closed-form per-node energy (n={n}, {transceiver_name}):")
        for name in sorted(measured, key=measured.get):
            print(f"  {name:10s} simulated={measured[name]:8.4f} J   model={modelled[name]:8.4f} J")
        # Shape claims: the proposed protocol wins, SOK loses, in both views.
        assert min(measured, key=measured.get) == "proposed"
        assert max(measured, key=measured.get) == "bd-sok"
        assert min(modelled, key=modelled.get) == "proposed"
        assert max(modelled, key=modelled.get) == "bd-sok"


@pytest.mark.parametrize("transceiver", [WLAN_SPECTRUM24, RADIO_100KBPS], ids=["wlan", "100kbps"])
def test_benchmark_figure1_generation(benchmark, transceiver):
    """Generating the closed-form sweep is cheap; benchmark it for the record."""
    values = benchmark(
        lambda: [
            initial_gka_energy_j(protocol, n, transceiver)
            for protocol in INITIAL_PROTOCOLS
            for n in FIGURE1_GROUP_SIZES
        ]
    )
    assert len(values) == len(INITIAL_PROTOCOLS) * len(FIGURE1_GROUP_SIZES)
