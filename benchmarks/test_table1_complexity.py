"""Reproduce Table 1: complexity of the five authenticated GKA protocols.

Prints the table for n in {10, 50, 100, 500}, cross-checks the closed-form
formulas against executed protocol runs at n = 6, and benchmarks one full run
of the proposed protocol.
"""

from __future__ import annotations

import pytest

from repro.analysis import TABLE1_METRICS, format_table, table1_complexity
from repro.baselines import AuthenticatedBDProtocol, SSNProtocol
from repro.core import ProposedGKAProtocol
from repro.pki import Identity

GROUP_SIZES = (10, 50, 100, 500)


def test_print_table1():
    """Regenerate Table 1 for the paper's group sizes."""
    for n in GROUP_SIZES:
        table = table1_complexity(n)
        rows = [[protocol] + [table[protocol][metric] for metric in TABLE1_METRICS] for protocol in table]
        print()
        print(format_table(["protocol"] + list(TABLE1_METRICS), rows, title=f"Table 1 (n = {n})"))
    # Headline claims of the table.
    table = table1_complexity(100)
    assert table["proposed"]["signature_verifications"] == 1
    assert table["bd-sok"]["signature_verifications"] == 99
    assert table["ssn"]["exponentiations"] == 2 * 100 + 4
    assert all(table[p]["exponentiations"] == 3 for p in ("proposed", "bd-sok", "bd-ecdsa", "bd-dsa"))


def test_measured_counts_match_table1(small_setup):
    """Execute each protocol at n = 6 and compare recorded counts to the formulas."""
    n = 6
    members = [Identity(f"t1m-{i}") for i in range(n)]
    expected = table1_complexity(n)

    proposed = ProposedGKAProtocol(small_setup).run(members, seed=1)
    recorder = proposed.state.recorders()[members[0].name]
    assert recorder.operation_count("modexp") == expected["proposed"]["exponentiations"]
    assert recorder.operation_count("sign_ver_gq") == expected["proposed"]["signature_verifications"]
    assert recorder.messages_received == expected["proposed"]["messages_rx"]

    ssn = SSNProtocol(small_setup).run(members, seed=2)
    ssn_recorder = ssn.state.recorders()[members[0].name]
    # Reconstruction note: our SSN implementation performs 2n+3 exponentiations
    # against the paper's 2n+4 accounting — same linear behaviour.
    assert abs(ssn_recorder.operation_count("modexp") - expected["ssn"]["exponentiations"]) <= 1

    ecdsa = AuthenticatedBDProtocol(small_setup, "ecdsa").run(members, seed=3)
    ecdsa_recorder = ecdsa.state.recorders()[members[0].name]
    # n-1 signature verifications + n-1 certificate verifications.
    assert ecdsa_recorder.operation_count("sign_ver_ecdsa") == (
        expected["bd-ecdsa"]["signature_verifications"]
        + expected["bd-ecdsa"]["certificate_verifications"]
    )


@pytest.mark.parametrize("size", [4, 8])
def test_benchmark_proposed_gka(benchmark, small_setup, size):
    """pytest-benchmark timing of a full proposed-GKA run (test-sized params)."""
    members = [Identity(f"bench-t1-{size}-{i}") for i in range(size)]
    result = benchmark(lambda: ProposedGKAProtocol(small_setup).run(members, seed=size))
    assert result.all_agree()
