"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works in fully offline environments where the
``wheel`` package (needed by PEP 660 editable installs) is unavailable — pip
can then fall back to the legacy ``setup.py develop`` code path via
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
